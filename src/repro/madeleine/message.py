"""Structured messages, fragments, and flows.

The paper's §3 observation drives this design: middleware requests are
not flat byte sequences but *structured messages* — one or more header
fragments describing the request plus one or more payload fragments.
The structure, and the packing mode attached to each fragment, are the
*constraints* the optimizer must respect while reordering.

Packing modes (the Madeleine API of reference [1]):

* ``CHEAPER`` — the library may handle the fragment however is cheapest
  (aggregate it, reorder it across flows, choose any protocol).
* ``SAFER`` — deterministic handling: the fragment travels in its own
  packet with no cross-flow aggregation (the receiver can rely on wire
  layout).
* ``LATER`` — the application may still modify the buffer until the
  message is flushed; the library may defer the fragment arbitrarily,
  letting later traffic overtake it.
"""

from __future__ import annotations

import enum
import itertools

from repro.network.virtual import TrafficClass
from repro.sim.process import Future
from repro.util.errors import ConfigurationError

__all__ = ["PackMode", "Fragment", "Message", "Flow"]

_fragment_ids = itertools.count()
_message_ids = itertools.count()
_flow_ids = itertools.count()


class PackMode(enum.Enum):
    """Per-fragment packing constraint (see module docstring)."""

    CHEAPER = "cheaper"
    SAFER = "safer"
    LATER = "later"


class Flow:
    """One directed communication flow between two nodes.

    A flow is what a middleware opens once and then streams messages
    over; the optimizer's cross-flow aggregation mixes packets *across*
    flows while preserving FIFO *within* each flow (for eager traffic).
    """

    __slots__ = ("flow_id", "name", "src", "dst", "traffic_class", "messages_sent")

    def __init__(
        self,
        name: str,
        src: str,
        dst: str,
        traffic_class: TrafficClass = TrafficClass.DEFAULT,
    ) -> None:
        if src == dst:
            raise ConfigurationError(f"flow {name!r} connects node {src!r} to itself")
        self.flow_id: int = next(_flow_ids)
        self.name = name
        self.src = src
        self.dst = dst
        self.traffic_class = traffic_class
        self.messages_sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Flow(#{self.flow_id} {self.name!r} {self.src}->{self.dst})"


class Fragment:
    """One contiguous piece of a message.

    ``express`` marks Madeleine *express* data: header-style fragments
    the receiver must be able to interpret ahead of the message body
    (they are what ``mad_unpack(..., receive_EXPRESS)`` reads to learn
    what the message is).  ``index`` is the fragment's position in its
    message; within a message, fragments are packed — and must be
    deliverable — in index order.
    """

    __slots__ = ("fragment_id", "message", "index", "size", "mode", "express")

    def __init__(
        self,
        message: "Message",
        index: int,
        size: int,
        mode: PackMode = PackMode.CHEAPER,
        express: bool = False,
    ) -> None:
        if size <= 0:
            raise ConfigurationError(f"fragment size must be > 0, got {size}")
        self.fragment_id: int = next(_fragment_ids)
        self.message = message
        self.index = index
        self.size = size
        self.mode = mode
        self.express = express

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = "hdr" if self.express else "data"
        return (
            f"Fragment(#{self.fragment_id} msg={self.message.message_id} "
            f"[{self.index}] {self.size}B {self.mode.value} {tag})"
        )


class Message:
    """A structured message: an ordered list of fragments on one flow.

    ``completion`` resolves (with the delivery time) once every fragment
    has fully arrived at the destination.  ``submit_time`` is stamped
    when the message is flushed into an engine.  ``context`` carries
    application metadata (an MPI tag, an RPC method id, …) — it rides
    the message the way header contents would in a real system, and the
    library never interprets it.
    """

    __slots__ = (
        "message_id",
        "flow",
        "fragments",
        "submit_time",
        "completion",
        "seq",
        "context",
    )

    def __init__(self, flow: Flow, context: dict | None = None) -> None:
        self.message_id: int = next(_message_ids)
        self.flow = flow
        self.fragments: list[Fragment] = []
        self.submit_time: float | None = None
        self.completion: Future = Future()
        self.seq = flow.messages_sent
        self.context: dict = context if context is not None else {}
        flow.messages_sent += 1

    def add_fragment(
        self,
        size: int,
        mode: PackMode = PackMode.CHEAPER,
        express: bool = False,
    ) -> Fragment:
        """Append one fragment (packing order defines wire order)."""
        if self.submit_time is not None:
            raise ConfigurationError(
                f"message {self.message_id} already flushed; cannot pack more"
            )
        fragment = Fragment(self, len(self.fragments), size, mode, express)
        self.fragments.append(fragment)
        return fragment

    @property
    def total_size(self) -> int:
        """Sum of fragment sizes in bytes."""
        return sum(f.size for f in self.fragments)

    @property
    def flushed(self) -> bool:
        """Whether the message was handed to an engine."""
        return self.submit_time is not None

    def mark_flushed(self, now: float) -> None:
        """Stamp the submit time (engines call this exactly once)."""
        if self.submit_time is not None:
            raise ConfigurationError(f"message {self.message_id} flushed twice")
        if not self.fragments:
            raise ConfigurationError(
                f"message {self.message_id} flushed with no fragments"
            )
        self.submit_time = now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(#{self.message_id} flow={self.flow.name!r} "
            f"{len(self.fragments)} frags, {self.total_size}B)"
        )
