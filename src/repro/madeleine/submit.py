"""Submit entries: the unit of work in the engines' waiting lists.

When a message is flushed, each fragment becomes one :class:`SubmitEntry`
in the sender's engine (paper Figure 1: "Waiting packs").  Control
traffic generated *by* the engine itself — rendezvous requests and
acknowledgements — also travels as submit entries, so protocol messages
compete for (and benefit from) the same scheduling as data: that is what
makes the traffic-class experiment (E7) meaningful.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any

from repro.madeleine.message import Flow, Fragment, Message
from repro.network.virtual import TrafficClass
from repro.util.errors import ConfigurationError

__all__ = [
    "EntryKind",
    "EntryState",
    "PENDING_ENTRY_STATES",
    "SubmitEntry",
    "CONTROL_ENTRY_SIZE",
]

_entry_ids = itertools.count()

#: Nominal payload size of engine-generated control entries (rendezvous
#: handshake records): a token plus a length, in bytes.
CONTROL_ENTRY_SIZE = 16


class EntryKind(enum.Enum):
    """What a waiting-list entry carries."""

    DATA = "data"  #: a message fragment (or a slice of one)
    RDV_REQ = "rdv_req"  #: rendezvous request, engine-generated
    RDV_ACK = "rdv_ack"  #: rendezvous acknowledgement, engine-generated


class EntryState(enum.Enum):
    """Lifecycle of a submit entry inside an engine."""

    WAITING = "waiting"  #: eligible for scheduling
    RDV_PENDING = "rdv_pending"  #: parked: REQ sent, awaiting ACK
    RDV_READY = "rdv_ready"  #: ACK received: bulk data dispatchable
    SENT = "sent"  #: fully handed to a NIC


#: States in which an entry is visible to (and schedulable by) the
#: waiting lists.  The queues' incremental accounting keys off this set.
PENDING_ENTRY_STATES = frozenset((EntryState.WAITING, EntryState.RDV_READY))


class SubmitEntry:
    """One schedulable unit.

    For ``DATA`` entries, ``fragment`` is set and ``offset``/``remaining``
    track partial dispatch (multirail striping sends slices).  Control
    entries carry protocol fields in ``meta`` (``token``, ``size``)
    instead of a fragment.

    An entry knows the :class:`~repro.core.waiting.ChannelQueue` holding
    it (``_owner``, maintained by the queue itself): state transitions
    and byte consumption notify the owner so the queue's pending
    count/bytes counters stay exact without ever re-walking the queue.
    """

    __slots__ = (
        "entry_id",
        "kind",
        "_state",
        "_owner",
        "flow",
        "flow_id",
        "dst",
        "traffic_class",
        "fragment",
        "message",
        "submit_time",
        "offset",
        "remaining",
        "meta",
    )

    def __init__(
        self,
        kind: EntryKind,
        dst: str,
        submit_time: float,
        *,
        fragment: Fragment | None = None,
        flow: Flow | None = None,
        traffic_class: TrafficClass | None = None,
        meta: dict[str, Any] | None = None,
    ) -> None:
        if kind is EntryKind.DATA:
            if fragment is None or flow is None:
                raise ConfigurationError("DATA entries need a fragment and a flow")
        elif fragment is not None:
            raise ConfigurationError(f"{kind.value} entries must not carry a fragment")
        self.entry_id: int = next(_entry_ids)
        self.kind = kind
        self._state = EntryState.WAITING
        self._owner = None  # ChannelQueue holding this entry, if any
        self.flow = flow
        #: Flat copy of ``flow.flow_id`` (``-1`` for engine control
        #: entries) — the decision kernel's array mirror reads this
        #: without chasing the flow object.
        self.flow_id: int = flow.flow_id if flow is not None else -1
        self.dst = dst
        if traffic_class is not None:
            self.traffic_class = traffic_class
        elif flow is not None:
            self.traffic_class = flow.traffic_class
        else:
            self.traffic_class = TrafficClass.CONTROL
        self.fragment = fragment
        self.message: Message | None = fragment.message if fragment is not None else None
        self.submit_time = submit_time
        self.offset = 0
        self.remaining = fragment.size if fragment is not None else CONTROL_ENTRY_SIZE
        self.meta: dict[str, Any] = meta if meta is not None else {}

    # ------------------------------------------------------------------
    # lifecycle (owner-notifying)
    # ------------------------------------------------------------------
    @property
    def state(self) -> EntryState:
        """Lifecycle state; assignment notifies the owning queue."""
        return self._state

    @state.setter
    def state(self, value: EntryState) -> None:
        old = self._state
        if value is old:
            return
        self._state = value
        owner = self._owner
        if owner is not None:
            owner._note_state_change(self, old, value)

    # ------------------------------------------------------------------
    # classification helpers used by strategies
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Bytes still to be sent for this entry."""
        return self.remaining

    @property
    def is_control(self) -> bool:
        """Engine-generated protocol traffic (REQ/ACK)."""
        return self.kind is not EntryKind.DATA

    @property
    def aggregatable(self) -> bool:
        """May this entry share a packet with others?

        SAFER fragments travel alone (deterministic wire layout);
        rendezvous bulk data always goes zero-copy on its own; engine
        control traffic rides its own protocol packets.
        """
        if self.is_control:
            return False
        if self._state is EntryState.RDV_READY:
            return False
        if self.fragment is not None and self.fragment.mode.value == "safer":
            return False
        return True

    @property
    def deferrable(self) -> bool:
        """May later entries of the same flow overtake this one?"""
        return self.fragment is not None and self.fragment.mode.value == "later"

    def consume(self, n_bytes: int) -> int:
        """Mark ``n_bytes`` as dispatched; returns the slice offset.

        Transitions to ``SENT`` when nothing remains.
        """
        if n_bytes <= 0 or n_bytes > self.remaining:
            raise ConfigurationError(
                f"entry {self.entry_id}: cannot consume {n_bytes} of "
                f"{self.remaining} remaining bytes"
            )
        start = self.offset
        self.offset += n_bytes
        self.remaining -= n_bytes
        owner = self._owner
        if owner is not None and self._state in PENDING_ENTRY_STATES:
            owner._note_bytes_consumed(n_bytes)
        if self.remaining == 0:
            self.state = EntryState.SENT
        return start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = (
            f"frag#{self.fragment.fragment_id}" if self.fragment is not None else self.kind.value
        )
        return (
            f"SubmitEntry(#{self.entry_id} {label} ->{self.dst} "
            f"{self.remaining}B {self.state.value})"
        )
