"""Receiver-side message reassembly.

A :class:`MessageReassembler` is installed as the (default) data sink of
a node's :class:`~repro.network.receiver.Receiver`.  It turns wire
segments back into fragments and fragments back into messages, coping
with everything the optimizer is allowed to do on the send side:
aggregation (many fragments per packet), striping (one fragment sliced
across several packets, possibly over different rails, arriving out of
order), and cross-flow interleaving.

Safety invariants enforced here (property-tested):

* no byte of a fragment may be delivered twice (duplicate slices raise
  :class:`~repro.util.errors.ProtocolError`);
* a message completes exactly once, when *all* its bytes have arrived.
"""

from __future__ import annotations

from typing import Callable

from repro.madeleine.message import Flow, Fragment, Message
from repro.network.wire import WirePacket
from repro.sim.engine import Simulator
from repro.sim.resources import Store
from repro.util.errors import ProtocolError

__all__ = ["MessageReassembler"]

#: Signature of completion callbacks: (message, completion_time).
MessageCallback = Callable[[Message, float], None]
#: Signature of express callbacks: (fragment, completion_time).
ExpressCallback = Callable[[Fragment, float], None]


class _FragmentProgress:
    """Delivered-range bookkeeping for one fragment."""

    __slots__ = ("fragment", "delivered", "ranges")

    def __init__(self, fragment: Fragment) -> None:
        self.fragment = fragment
        self.delivered = 0
        self.ranges: list[tuple[int, int]] = []  # sorted (offset, length)

    def add(self, offset: int, length: int) -> None:
        end = offset + length
        if offset < 0 or end > self.fragment.size:
            raise ProtocolError(
                f"fragment {self.fragment.fragment_id}: slice [{offset}, {end}) "
                f"outside [0, {self.fragment.size})"
            )
        for existing_offset, existing_length in self.ranges:
            if offset < existing_offset + existing_length and existing_offset < end:
                raise ProtocolError(
                    f"fragment {self.fragment.fragment_id}: duplicate delivery of "
                    f"[{offset}, {end})"
                )
        self.ranges.append((offset, length))
        self.ranges.sort()
        self.delivered += length

    @property
    def complete(self) -> bool:
        return self.delivered == self.fragment.size


class MessageReassembler:
    """Per-node reassembly of incoming data packets."""

    def __init__(self, sim: Simulator, node_name: str) -> None:
        self._sim = sim
        self.node_name = node_name
        self._progress: dict[int, _FragmentProgress] = {}
        self._message_remaining: dict[int, int] = {}
        self._flow_callbacks: dict[int, list[MessageCallback]] = {}
        self._express_callbacks: dict[int, list[ExpressCallback]] = {}
        self._inboxes: dict[int, Store] = {}
        self._announced: dict[int, list[Message]] = {}
        self._announce_waiters: dict[int, list] = {}
        self._fragment_watchers: dict[int, list] = {}
        self._completed_messages: set[int] = set()
        self.messages_completed = 0
        self.on_message_complete: MessageCallback | None = None

    # ------------------------------------------------------------------
    # subscriptions (middleware side)
    # ------------------------------------------------------------------
    def subscribe(self, flow: Flow, callback: MessageCallback) -> None:
        """Run ``callback(message, time)`` for every completed message of a flow."""
        self._flow_callbacks.setdefault(flow.flow_id, []).append(callback)

    def subscribe_express(self, flow: Flow, callback: ExpressCallback) -> None:
        """Run ``callback(fragment, time)`` when an express fragment lands.

        This is the ``receive_express`` path: headers become readable
        before the message body has finished arriving.
        """
        self._express_callbacks.setdefault(flow.flow_id, []).append(callback)

    def inbox(self, flow: Flow) -> Store:
        """A mailbox receiving each completed message of a flow.

        Created lazily; closed-loop workload processes ``yield
        inbox.get()`` to wait for the next message.
        """
        if flow.flow_id not in self._inboxes:
            self._inboxes[flow.flow_id] = Store(self._sim, name=f"inbox:{flow.name}")
        return self._inboxes[flow.flow_id]

    # ------------------------------------------------------------------
    # sink interface (wired to network.Receiver)
    # ------------------------------------------------------------------
    def sink(self, packet: WirePacket) -> None:
        """Consume one delivered data packet."""
        now = self._sim.now
        for segment in packet.segments:
            fragment = segment.payload
            if not isinstance(fragment, Fragment):
                raise ProtocolError(
                    f"non-fragment payload {segment.payload!r} on data channel"
                )
            self._deliver_slice(fragment, segment.offset, segment.length, now)

    def _deliver_slice(self, fragment: Fragment, offset: int, length: int, now: float) -> None:
        message = fragment.message
        if message.flow.dst != self.node_name:
            raise ProtocolError(
                f"fragment of flow {message.flow.name!r} (dst {message.flow.dst!r}) "
                f"delivered to node {self.node_name!r}"
            )
        if message.message_id in self._completed_messages:
            raise ProtocolError(
                f"slice for already-completed message {message.message_id} "
                f"(replayed packet?)"
            )
        progress = self._progress.get(fragment.fragment_id)
        if progress is None:
            progress = _FragmentProgress(fragment)
            self._progress[fragment.fragment_id] = progress
            if message.message_id not in self._message_remaining:
                self._message_remaining[message.message_id] = len(message.fragments)
                self._announce(message, now)
        was_complete = progress.complete
        progress.add(offset, length)
        if progress.complete and not was_complete:
            self._on_fragment_complete(fragment, now)

    def _announce(self, message: Message, now: float) -> None:
        """First slice of a new message arrived: wake unpacking sessions."""
        flow_id = message.flow.flow_id
        waiters = self._announce_waiters.get(flow_id)
        if waiters:
            waiters.pop(0).resolve(message)
        else:
            self._announced.setdefault(flow_id, []).append(message)

    def next_message(self, flow: Flow):
        """A future resolving with the next (possibly incomplete) message
        announced on a flow — the ``mad_begin_unpacking`` latch point."""
        from repro.sim.process import Future

        future = Future()
        announced = self._announced.get(flow.flow_id)
        if announced:
            future.resolve(announced.pop(0))
        else:
            self._announce_waiters.setdefault(flow.flow_id, []).append(future)
        return future

    def when_fragment_complete(self, fragment: Fragment):
        """A future resolving with ``fragment`` once all its bytes arrived."""
        from repro.sim.process import Future

        future = Future()
        progress = self._progress.get(fragment.fragment_id)
        if (progress is not None and progress.complete) or fragment.message.completion.done:
            future.resolve(fragment)
        else:
            self._fragment_watchers.setdefault(fragment.fragment_id, []).append(future)
        return future

    def _on_fragment_complete(self, fragment: Fragment, now: float) -> None:
        message = fragment.message
        for watcher in self._fragment_watchers.pop(fragment.fragment_id, ()):
            watcher.resolve(fragment)
        if fragment.express:
            for callback in self._express_callbacks.get(message.flow.flow_id, ()):
                callback(fragment, now)
        remaining = self._message_remaining[message.message_id] - 1
        self._message_remaining[message.message_id] = remaining
        if remaining == 0:
            self._complete_message(message, now)

    def _complete_message(self, message: Message, now: float) -> None:
        self.messages_completed += 1
        self._completed_messages.add(message.message_id)
        # Free per-fragment state; the message is done.
        for fragment in message.fragments:
            self._progress.pop(fragment.fragment_id, None)
        del self._message_remaining[message.message_id]
        tracer = self._sim.tracer
        if tracer.enabled:
            tracer.emit(
                now,
                f"reasm:{self.node_name}",
                "message.complete",
                message=message.message_id,
                flow=message.flow.name,
                src=message.flow.src,
                bytes=message.total_size,
                submit_time=message.submit_time,
            )
        message.completion.resolve(now)
        if self.on_message_complete is not None:
            self.on_message_complete(message, now)
        flow_id = message.flow.flow_id
        for callback in self._flow_callbacks.get(flow_id, ()):
            callback(message, now)
        inbox = self._inboxes.get(flow_id)
        if inbox is not None:
            inbox.put(message)

    # ------------------------------------------------------------------
    # abandonment (degraded runs)
    # ------------------------------------------------------------------
    def abandon_incomplete(self, predicate: Callable[[Message], bool]) -> int:
        """Drop partially reassembled messages matching ``predicate``.

        Used by the live plane when a sender dies mid-message: its
        remaining bytes will never arrive, and an eternally incomplete
        message would pin :attr:`incomplete_messages` above zero and
        wedge quiescence detection.  All per-fragment progress and
        watcher state is released; completion futures are left
        unresolved (the message did *not* complete).  Returns the
        number of messages abandoned.
        """
        doomed: dict[int, Message] = {}
        for progress in list(self._progress.values()):
            message = progress.fragment.message
            if (
                message.message_id in self._message_remaining
                and message.message_id not in doomed
                and predicate(message)
            ):
                doomed[message.message_id] = message
        for message in doomed.values():
            for fragment in message.fragments:
                self._progress.pop(fragment.fragment_id, None)
                self._fragment_watchers.pop(fragment.fragment_id, None)
            self._message_remaining.pop(message.message_id, None)
        return len(doomed)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def incomplete_messages(self) -> int:
        """Messages with at least one byte delivered but not yet complete."""
        return len(self._message_remaining)
