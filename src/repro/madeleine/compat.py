"""Madeleine-3 style function API (``mad_*``).

Code written against the historical C interface of reference [1]
translates line by line::

    connection = mad_begin_packing(api, flow)
    mad_pack(connection, 16, mad_send_SAFER, mad_receive_EXPRESS)
    mad_pack(connection, 4096, mad_send_CHEAPER, mad_receive_CHEAPER)
    message = mad_end_packing(connection)

    connection = mad_begin_unpacking(api, flow)
    header = mad_unpack(connection, 16, mad_send_SAFER, mad_receive_EXPRESS)
    body = mad_unpack(connection, 4096, mad_send_CHEAPER, mad_receive_CHEAPER)
    mad_end_unpacking(connection)   # future; resolves at full delivery

The mode pairs map exactly: the send mode becomes the fragment's
:class:`~repro.madeleine.message.PackMode`; ``mad_receive_EXPRESS``
marks the fragment express (readable ahead of the body).
"""

from __future__ import annotations

from repro.madeleine.api import MadAPI, PackingSession, UnpackingSession
from repro.madeleine.message import Flow, Message, PackMode

__all__ = [
    "mad_send_CHEAPER",
    "mad_send_SAFER",
    "mad_send_LATER",
    "mad_receive_EXPRESS",
    "mad_receive_CHEAPER",
    "mad_begin_packing",
    "mad_pack",
    "mad_end_packing",
    "mad_begin_unpacking",
    "mad_unpack",
    "mad_end_unpacking",
]

#: Send-mode constants (map to :class:`PackMode`).
mad_send_CHEAPER = PackMode.CHEAPER
mad_send_SAFER = PackMode.SAFER
mad_send_LATER = PackMode.LATER

#: Receive-mode constants.
mad_receive_EXPRESS = "express"
mad_receive_CHEAPER = "cheaper"


def mad_begin_packing(api: MadAPI, flow: Flow) -> PackingSession:
    """Open a packing connection on an outgoing flow."""
    return api.begin(flow)


def mad_pack(
    connection: PackingSession,
    size: int,
    send_mode: PackMode = mad_send_CHEAPER,
    receive_mode: str = mad_receive_CHEAPER,
) -> PackingSession:
    """Append one fragment with the classic (send, receive) mode pair."""
    return connection.pack(
        size, mode=send_mode, express=(receive_mode == mad_receive_EXPRESS)
    )


def mad_end_packing(connection: PackingSession) -> Message:
    """Flush the message into the engine."""
    return connection.flush()


def mad_begin_unpacking(api: MadAPI, flow: Flow) -> UnpackingSession:
    """Latch onto the next incoming message of a flow."""
    return api.begin_unpacking(flow)


def mad_unpack(
    connection: UnpackingSession,
    size: int,
    send_mode: PackMode = mad_send_CHEAPER,
    receive_mode: str = mad_receive_CHEAPER,
):
    """Future for the next fragment; validates the declared size.

    ``send_mode``/``receive_mode`` are accepted for interface fidelity —
    the sender's packing already fixed the wire behaviour.
    """
    del send_mode, receive_mode
    return connection.unpack(size)


def mad_end_unpacking(connection: UnpackingSession):
    """Future resolving with the message once fully delivered."""
    return connection.end()
