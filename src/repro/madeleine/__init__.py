"""The Madeleine messaging layer.

Implements the *application-visible* half of the library: structured
messages built through the Madeleine packing interface (paper §3:
"structured messages with one or more fragments expressing what the
message carries … and one or more other fragments being the actual
data"), flows between node pairs, the submit-entry representation that
feeds the engines, and receiver-side message reassembly.

The *engines* that move these messages live elsewhere: the paper's
optimizing engine in :mod:`repro.core`, the deterministic Madeleine-3
baseline in :mod:`repro.baseline`.
"""

from repro.madeleine.api import MadAPI, PackingSession
from repro.madeleine.message import Flow, Fragment, Message, PackMode
from repro.madeleine.rx import MessageReassembler
from repro.madeleine.submit import EntryKind, EntryState, SubmitEntry

__all__ = [
    "EntryKind",
    "EntryState",
    "Flow",
    "Fragment",
    "MadAPI",
    "Message",
    "MessageReassembler",
    "PackMode",
    "PackingSession",
    "SubmitEntry",
]
