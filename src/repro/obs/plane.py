"""The observability plane: config, lifecycle, and export glue.

An :class:`ObservabilityPlane` bundles the three capture mechanisms —

* a trace sink (unbounded :class:`~repro.obs.recorder.ListSink`, or a
  bounded :class:`~repro.obs.recorder.RingBufferSink` flight recorder),
* a :class:`~repro.obs.metrics.MetricsRegistry`,
* an optional :class:`~repro.obs.sampler.ObservabilitySampler` —

and attaches them to a cluster by *subscribing* to the tracer the
simulator already carries.  Subscription flips ``tracer.enabled``, so
every guarded emit site in the sim/core/network layers starts
producing events; with no plane installed those sites stay on the
NullTracer fast path (one attribute read, one branch, no detail-dict
allocation).

Scenarios opt in with a top-level ``"observability"`` block::

    "observability": {
      "sample_interval": 1e-5,     # simulated seconds; null disables
      "ring_buffer": 65536,        # keep last N events; null = keep all
      "trace": true,               # capture trace events at all
      "exemplars": 5,              # slowest-K span chains kept per edge
      "slo": [                     # latency objectives (see obs.tails)
        {"name": "edge", "edge": "*", "threshold_us": 5000,
         "target": 0.99, "windows": [1.0, 10.0]}
      ]
    }

Unknown keys are rejected (:class:`ConfigurationError`), same contract
as the ``"faults"`` block — a typo'd knob silently ignored would
invalidate the run it was meant to observe.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping

from repro.obs.causal import TailExemplars
from repro.obs.export import write_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import ListSink, RingBufferSink, truncation_marker
from repro.obs.sampler import ObservabilitySampler
from repro.obs.tails import SLObjective, TailRecorder, TailView, parse_slo
from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.cluster import Cluster

__all__ = ["ObservabilityConfig", "ObservabilityPlane"]

_SPEC_KEYS = frozenset(
    {"sample_interval", "ring_buffer", "trace", "slo", "exemplars"}
)

#: Slowest-K span chains kept per edge when the scenario does not say.
_DEFAULT_EXEMPLARS = 4


@dataclass(frozen=True, slots=True)
class ObservabilityConfig:
    """Validated shape of the scenario ``"observability"`` block.

    Parameters
    ----------
    sample_interval:
        Simulated seconds between time-series samples; ``None``
        disables the sampler (trace events still flow).
    ring_buffer:
        Flight-recorder capacity (events); ``None`` keeps everything.
    trace:
        When false, no trace sink is subscribed — the plane only
        samples into the metrics registry, and the per-event emit
        sites stay on their disabled fast path.  Tail sketches ride
        the same subscription, so they are also off.
    slo:
        Latency objectives evaluated over the edge tail sketches
        (see :mod:`repro.obs.tails`).
    exemplars:
        Slowest-K span chains kept per edge by the causal-attribution
        reservoir (see :class:`repro.obs.causal.TailExemplars`).
        ``None`` takes the default K; ``0`` disables the reservoir.
        Only meaningful with ``trace`` on.
    """

    sample_interval: float | None = None
    ring_buffer: int | None = None
    trace: bool = True
    slo: tuple[SLObjective, ...] = ()
    exemplars: int | None = None

    def __post_init__(self) -> None:
        if self.sample_interval is not None and self.sample_interval <= 0:
            raise ConfigurationError(
                f"sample_interval must be > 0, got {self.sample_interval}"
            )
        if self.ring_buffer is not None and self.ring_buffer < 1:
            raise ConfigurationError(
                f"ring_buffer must be >= 1, got {self.ring_buffer}"
            )
        if self.exemplars is not None and self.exemplars < 0:
            raise ConfigurationError(
                f"exemplars must be >= 0, got {self.exemplars}"
            )

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "ObservabilityConfig":
        """Build from a scenario mapping, rejecting unknown keys."""
        for key in spec:
            if key not in _SPEC_KEYS:
                raise ConfigurationError(
                    f"unknown observability key {key!r} (known: {sorted(_SPEC_KEYS)})"
                )
        return cls(
            sample_interval=spec.get("sample_interval"),
            ring_buffer=spec.get("ring_buffer"),
            trace=spec.get("trace", True),
            slo=parse_slo(spec.get("slo")),
            exemplars=spec.get("exemplars"),
        )


class ObservabilityPlane:
    """One cluster's observability capture, install → run → export."""

    def __init__(self, config: ObservabilityConfig | None = None) -> None:
        self.config = config if config is not None else ObservabilityConfig()
        self.registry = MetricsRegistry()
        self.sink: ListSink | RingBufferSink | None = None
        self.sampler: ObservabilitySampler | None = None
        self.tail_view = TailView(self.registry, self.config.slo)
        self.tail_recorder: TailRecorder | None = None
        self.tail_exemplars: TailExemplars | None = None
        self._cluster: "Cluster | None" = None
        if self.config.trace:
            self.sink = (
                RingBufferSink(self.config.ring_buffer)
                if self.config.ring_buffer is not None
                else ListSink()
            )
            self.tail_recorder = TailRecorder(self.registry)
            k = (
                _DEFAULT_EXEMPLARS
                if self.config.exemplars is None
                else self.config.exemplars
            )
            if k > 0:
                self.tail_exemplars = TailExemplars(k)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def install(self, cluster: "Cluster") -> None:
        """Attach to a freshly built cluster (before running it)."""
        if self._cluster is not None:
            raise ConfigurationError("observability plane is already installed")
        self._cluster = cluster
        if self.sink is not None:
            cluster.sim.tracer.subscribe(self.sink)
        if self.tail_recorder is not None:
            cluster.sim.tracer.subscribe(self.tail_recorder)
        if self.tail_exemplars is not None:
            cluster.sim.tracer.subscribe(self.tail_exemplars)
        # The view is read-only and only feeds tracing-side records
        # (tail_hint), so handing it to every engine cannot change
        # dispatch — the identity tests pin that.
        for engine in cluster.engines.values():
            engine.tail_view = self.tail_view
        if self.config.sample_interval is not None:
            self.sampler = ObservabilitySampler(
                cluster,
                self.config.sample_interval,
                registry=self.registry,
                tail_view=self.tail_view,
            )

    def finalize(self) -> None:
        """Mirror end-of-run cumulative counters into the registry.

        Engine and NIC stats are maintained by the hot path itself;
        copying them in once at the end keeps the run unperturbed while
        making the Prometheus exposition a complete run summary.
        """
        cluster = self._cluster
        if cluster is None:
            return
        registry = self.registry
        for name, engine in cluster.engines.items():
            labels = {"node": name}
            stats = engine.stats
            registry.counter(
                "repro_dispatches_total", labels, help="Packets dispatched"
            ).set_total(stats.dispatches)
            registry.counter(
                "repro_data_packets_total", labels, help="Data packets dispatched"
            ).set_total(stats.data_packets)
            registry.counter(
                "repro_data_segments_total",
                labels,
                help="Payload segments across data packets",
            ).set_total(stats.data_segments)
            registry.counter(
                "repro_holds_total", labels, help="Nagle holds taken"
            ).set_total(stats.holds)
            registry.counter(
                "repro_rdv_parked_total", labels, help="Entries parked for rendezvous"
            ).set_total(stats.rdv_parked)
            registry.counter(
                "repro_failovers_total", labels, help="Rail-down re-routes"
            ).set_total(stats.failovers)
            for trigger, count in stats.activations.items():
                registry.counter(
                    "repro_activations_total",
                    {"node": name, "trigger": trigger},
                    help="Optimizer activations by trigger",
                ).set_total(count)
        for node in cluster.fabric.nodes:
            for nic in node.nics:
                labels = {"nic": nic.name}
                registry.counter(
                    "repro_nic_requests_total", labels, help="NIC send requests"
                ).set_total(nic.stats.requests)
                registry.counter(
                    "repro_nic_wire_bytes_total", labels, help="Bytes put on the wire"
                ).set_total(nic.stats.wire_bytes)
        transport = cluster.transport
        if transport is not None:
            registry.counter(
                "repro_retransmits_total", help="Reliability-layer retransmissions"
            ).set_total(transport.stats.retransmits)
        if self.sink is not None:
            registry.counter(
                "repro_trace_events_total", help="Trace events captured (post-drop)"
            ).set_total(len(self.sink.events))
            registry.counter(
                "repro_trace_events_dropped_total",
                help="Trace events evicted by the flight recorder",
            ).set_total(self.sink.dropped)
        if self.tail_exemplars is not None:
            self.tail_exemplars.finish()
            self.tail_exemplars.export(registry)

    # ------------------------------------------------------------------
    # access + export
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """Captured trace events (empty when tracing is off)."""
        return list(self.sink.events) if self.sink is not None else []

    def write_trace(self, path: str | Path) -> str:
        """Export captured events; format chosen by extension.

        A flight recorder that overflowed gets an ``obs.truncated``
        marker appended, so offline consumers can warn about the
        evicted prefix instead of reading the window as a full run.
        """
        if self.sink is None:
            raise ConfigurationError(
                "no trace captured: the observability plane has trace=false"
            )
        events = self.sink.events
        if self.sink.dropped:
            events = events + [truncation_marker(self.sink)]
        return write_trace(path, events)

    def write_metrics(self, path: str | Path) -> None:
        """Export the registry as Prometheus text exposition."""
        Path(path).write_text(self.registry.to_prometheus(), encoding="utf-8")
