"""The observability plane's periodic time-series sampler.

Every ``interval`` simulated seconds the sampler snapshots the state
the optimizer's story is told in — per-channel queue depth and bytes,
per-NIC busy fraction over the last interval, reliability-layer
retransmits in flight, rendezvous handshakes in flight, and hold-timer
occupancy — then

* appends an :class:`ObsSample` row to its in-memory series,
* updates the plane's :class:`~repro.obs.metrics.MetricsRegistry`
  (gauges for the instantaneous values, log-bucketed histograms for
  the queue-depth and busy-fraction distributions), and
* emits one ``obs.sample`` trace event, which the Chrome exporter
  turns into Perfetto counter tracks.

The sampler keeps itself alive only while the simulation is: with no
``horizon`` it stops rescheduling once its own tick is the last event
in the queue, so finite workloads still drain under
``run_until_idle`` (same termination rule as
:class:`repro.runtime.sampling.PeriodicSampler`, which remains the
lightweight registry-less alternative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.tails import TailView
    from repro.runtime.cluster import Cluster

__all__ = ["ObsSample", "ObservabilitySampler"]


@dataclass(frozen=True, slots=True)
class ObsSample:
    """One tick of the observability time series."""

    time: float
    #: ``"node/channel_id"`` → (pending entries, pending bytes).
    queues: dict[str, tuple[int, int]]
    #: NIC name → busy fraction over the last interval (0..1).
    nic_busy: dict[str, float]
    backlog: int
    backlog_bytes: int
    retransmits_in_flight: int
    rendezvous_in_flight: int
    holds_armed: int  #: engines with a Nagle hold timer pending
    messages_completed: int


class ObservabilitySampler:
    """Samples a cluster every ``interval`` virtual seconds."""

    def __init__(
        self,
        cluster: "Cluster",
        interval: float,
        *,
        registry: "MetricsRegistry | None" = None,
        horizon: float | None = None,
        source: str = "obs:sampler",
        autostart: bool = True,
        tail_view: "TailView | None" = None,
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(f"sample interval must be > 0, got {interval}")
        if horizon is not None and horizon <= 0:
            raise ConfigurationError(f"horizon must be > 0, got {horizon}")
        self._cluster = cluster
        self.interval = interval
        self.horizon = horizon
        self.registry = registry
        #: When set, each tick embeds compact per-edge p99s in its
        #: ``obs.sample`` record so the Perfetto export can draw tail
        #: counter tracks over time.
        self.tail_view = tail_view
        #: Trace source the tick emits under; live peers use ``obs:<node>``
        #: so merged multi-process traces attribute samples to a peer.
        self.source = source
        self.samples: list[ObsSample] = []
        self._prev_busy: dict[str, float] = {}
        self._prev_time: float | None = None
        if autostart:
            # Subclasses with their own scheduling discipline (the live
            # plane's wall-clock sampler) pass autostart=False: the base
            # tick would pin itself to the event queue and, live, keep a
            # timer permanently pending — defeating quiescence detection.
            cluster.sim.schedule(0.0, self._tick)

    # ------------------------------------------------------------------
    # the tick
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        cluster = self._cluster
        if self.horizon is not None and cluster.sim.now > self.horizon:
            return
        self.sample_once()
        if self.horizon is None and cluster.sim.pending_events == 0:
            # The tick just consumed was the only thing scheduled: the
            # simulation has drained, so let run_until_idle terminate.
            return
        cluster.sim.schedule(self.interval, self._tick)

    def sample_once(self) -> ObsSample:
        """Take one sample now: record, mirror to the registry, emit.

        The scheduling-free core of :meth:`_tick`, shared with subclasses
        that drive their own cadence (live wall-clock sampling).
        """
        cluster = self._cluster
        now = cluster.sim.now
        sample = self._snapshot(now)
        self.samples.append(sample)
        if self.registry is not None:
            self._update_registry(sample)
        tracer = cluster.sim.tracer
        if tracer.enabled:
            detail = dict(
                queues={k: list(v) for k, v in sample.queues.items()},
                nic_busy=sample.nic_busy,
                backlog=sample.backlog,
                backlog_bytes=sample.backlog_bytes,
                retransmits_in_flight=sample.retransmits_in_flight,
                rendezvous_in_flight=sample.rendezvous_in_flight,
                holds_armed=sample.holds_armed,
                completed=sample.messages_completed,
            )
            if self.tail_view is not None:
                tails = {
                    edge: stats.p99_us
                    for edge, stats in self.tail_view.edges().items()
                }
                if tails:
                    detail["tail_p99_us"] = tails
            tracer.emit(now, self.source, "obs.sample", **detail)
        return sample

    def _snapshot(self, now: float) -> ObsSample:
        cluster = self._cluster
        queues: dict[str, tuple[int, int]] = {}
        holds = 0
        rdv = 0
        for name, engine in cluster.engines.items():
            for queue in engine.waiting.queues():
                queues[f"{name}/{queue.channel_id}"] = (
                    len(queue),
                    queue.pending_bytes,
                )
            if engine.hold_timer_armed:
                holds += 1
            rdv += engine.rendezvous_in_flight

        nic_busy: dict[str, float] = {}
        span = now - self._prev_time if self._prev_time is not None else None
        for node in cluster.fabric.nodes:
            for nic in node.nics:
                busy = nic.stats.busy_time
                if span is not None and span > 0:
                    delta = busy - self._prev_busy.get(nic.name, 0.0)
                    nic_busy[nic.name] = min(max(delta / span, 0.0), 1.0)
                else:
                    nic_busy[nic.name] = 0.0
                self._prev_busy[nic.name] = busy
        self._prev_time = now

        transport = cluster.transport
        return ObsSample(
            time=now,
            queues=queues,
            nic_busy=nic_busy,
            backlog=sum(e.waiting.total_pending for e in cluster.engines.values()),
            backlog_bytes=sum(
                e.waiting.total_pending_bytes for e in cluster.engines.values()
            ),
            retransmits_in_flight=transport.in_flight if transport is not None else 0,
            rendezvous_in_flight=rdv,
            holds_armed=holds,
            messages_completed=sum(
                r.messages_completed for r in cluster.reassemblers.values()
            ),
        )

    def _update_registry(self, sample: ObsSample) -> None:
        registry = self.registry
        assert registry is not None
        for key, (depth, n_bytes) in sample.queues.items():
            node, _, channel = key.partition("/")
            labels = {"node": node, "channel": channel}
            registry.gauge(
                "repro_queue_depth", labels, help="Pending entries per channel queue"
            ).set(depth)
            registry.gauge(
                "repro_queue_bytes", labels, help="Pending bytes per channel queue"
            ).set(n_bytes)
            registry.histogram(
                "repro_queue_depth_hist",
                help="Sampled channel queue depth distribution",
            ).observe(depth)
        for nic_name, fraction in sample.nic_busy.items():
            registry.gauge(
                "repro_nic_busy_fraction",
                {"nic": nic_name},
                help="NIC busy fraction over the last sample interval",
            ).set(fraction)
            registry.histogram(
                "repro_nic_busy_hist",
                help="Sampled NIC busy fraction distribution (percent)",
                base=1.0,
                growth=2.0,
                n_buckets=8,
            ).observe(fraction * 100.0)
        registry.gauge(
            "repro_backlog_entries", help="Pending entries across all engines"
        ).set(sample.backlog)
        registry.gauge(
            "repro_backlog_bytes", help="Pending bytes across all engines"
        ).set(sample.backlog_bytes)
        registry.gauge(
            "repro_retransmits_in_flight",
            help="Reliability-layer packets awaiting acknowledgement",
        ).set(sample.retransmits_in_flight)
        registry.gauge(
            "repro_rendezvous_in_flight",
            help="Rendezvous handshakes awaiting acknowledgement",
        ).set(sample.rendezvous_in_flight)
        registry.gauge(
            "repro_hold_timers_armed", help="Engines with a Nagle hold timer pending"
        ).set(sample.holds_armed)
        registry.counter(
            "repro_samples_total", help="Observability samples taken"
        ).inc()

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def series(self, field: str) -> list[float]:
        """One scalar sample field over time (e.g. ``"backlog"``)."""
        try:
            return [getattr(s, field) for s in self.samples]
        except AttributeError:
            raise ConfigurationError(f"unknown sample field {field!r}") from None

    @property
    def times(self) -> list[float]:
        return self.series("time")
