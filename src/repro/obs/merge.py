"""Cross-peer merge semantics: clocks, trace streams, metric registries.

A live run (:mod:`repro.live`) produces one observability stream *per OS
process*.  This module turns those fragments into one coherent picture:

* **Clock-offset estimation** — every peer measures time as
  ``wall_clock - epoch`` with the coordinator's epoch, so offsets are
  small but not zero (and on a multi-host mesh they would be real).
  :func:`estimate_offsets` starts from control-protocol round-trip
  samples (the peer's ``now`` against the request/reply midpoint — the
  classic NTP estimate, taken from the minimum-RTT sample) and refines
  the result with matched send/receive pairs: for each directed edge the
  minimum observed raw one-way delay bounds the relative skew from one
  side, and having both directions brackets it, so the midpoint
  correction cancels residual skew without ever assuming the wire is
  symmetric for any *individual* crossing.
* **Event alignment** — :func:`align_events` applies one constant offset
  per peer (subtracted from every timestamp), which preserves each
  peer's internal event ordering by construction, rewrites the
  receive-side ``live.recv`` records with the *aligned* send timestamp,
  and stable-sorts the union.  A crossing whose aligned send would land
  after its receive (possible when the true latency is below the
  residual skew) is clamped and counted — never silently reordered.
* **Registry merging** — :func:`merge_registries` builds the
  cluster-level :class:`~repro.obs.metrics.MetricsRegistry`: every
  per-peer instrument reappears with a ``peer`` label.
  :func:`aggregate_registries` collapses same-name/same-label
  instruments across inputs instead: counters sum (associative and
  commutative), gauges take the last writer, histograms merge
  bucket-wise — which equals the histogram of the union of the raw
  observations because bucket bounds are fixed at construction — and
  quantile sketches merge level-wise (:func:`merge_sketches`), which
  replaces raw-sample pooling for cross-peer tail percentiles.
* **Sketch offset correction** — a live peer records one-way edge
  latencies against *raw* clocks (it cannot know the cluster offsets
  mid-run).  Because every sample on a directed edge needs the same
  constant correction, :func:`correct_edge_sketches` applies it exactly,
  post-merge, by shifting each edge sketch — the sketch equivalent of
  the per-event rewrite :func:`align_events` does for trace records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)
from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceEvent

__all__ = [
    "KIND_WIRE_RECV",
    "OffsetSample",
    "Crossing",
    "MergedTrace",
    "estimate_offsets",
    "extract_crossings",
    "align_events",
    "merge_registries",
    "aggregate_registries",
    "merge_histograms",
    "merge_sketches",
    "correct_edge_sketches",
]

#: Trace-event kind emitted by a live peer when a wire frame is decoded
#: and handed to the node receiver (the receive half of a flow event).
KIND_WIRE_RECV = "live.recv"

#: Relaxation sweeps for pairwise skew refinement (each sweep halves the
#: residual of a pair; three are plenty for loopback-scale skews).
_REFINE_PASSES = 3


@dataclass(frozen=True, slots=True)
class OffsetSample:
    """One control-protocol round trip against a peer's clock.

    ``t0``/``t1`` are coordinator clock (seconds since epoch) at request
    send and reply receive; ``peer_now`` is the peer's clock when it
    built the reply.
    """

    peer: str
    t0: float
    t1: float
    peer_now: float

    @property
    def rtt(self) -> float:
        return self.t1 - self.t0

    @property
    def offset(self) -> float:
        """Midpoint estimate of (peer clock - coordinator clock)."""
        return self.peer_now - (self.t0 + self.t1) / 2.0


@dataclass(frozen=True, slots=True)
class Crossing:
    """One matched wire crossing: raw timestamps from both clocks."""

    src: str
    dst: str
    sent_at: float  #: sender clock, stamped into the wire meta
    received_at: float  #: receiver clock, at frame decode


@dataclass
class MergedTrace:
    """One aligned, merged event stream plus its correlation accounting."""

    events: list[TraceEvent]
    offsets: dict[str, float]
    crossings_matched: int = 0
    crossings_clamped: int = 0
    #: per-peer events that arrived in the merge (before sorting).
    events_by_peer: dict[str, int] = field(default_factory=dict)


# ----------------------------------------------------------------------
# clock offsets
# ----------------------------------------------------------------------
def estimate_offsets(
    samples: Iterable[OffsetSample],
    crossings: Iterable[Crossing] = (),
    *,
    peers: Iterable[str] = (),
) -> dict[str, float]:
    """Per-peer clock offsets (peer clock minus the merged timeline).

    Subtracting ``offsets[p]`` from every timestamp peer ``p`` produced
    puts all peers on one timeline.  Peers named in ``peers`` (or seen
    in ``samples``/``crossings``) always appear in the result, at 0.0
    when nothing constrains them.
    """
    offsets: dict[str, float] = {name: 0.0 for name in peers}

    # Round-trip base estimate: the minimum-RTT sample has the least
    # queueing noise in it, so its midpoint is the best single guess.
    best: dict[str, OffsetSample] = {}
    for sample in samples:
        if sample.rtt < 0:
            raise ConfigurationError(
                f"offset sample for {sample.peer!r} has negative RTT {sample.rtt}"
            )
        current = best.get(sample.peer)
        if current is None or sample.rtt < current.rtt:
            best[sample.peer] = sample
    for name, sample in best.items():
        offsets[name] = sample.offset

    # Pairwise refinement from matched crossings.  For the directed edge
    # A->B let d_AB = min(recv_B - sent_A) after current alignment; with
    # residual skew s (B's clock fast by s relative to A) and true
    # minimum latency L:  d_AB ~ L + s and d_BA ~ L - s, so
    # s ~ (d_AB - d_BA) / 2.  Split the correction between both ends so
    # peers constrained by several edges converge instead of ping-ponging.
    by_edge: dict[tuple[str, str], list[Crossing]] = {}
    for crossing in crossings:
        offsets.setdefault(crossing.src, 0.0)
        offsets.setdefault(crossing.dst, 0.0)
        by_edge.setdefault((crossing.src, crossing.dst), []).append(crossing)
    pairs = {tuple(sorted(edge)) for edge in by_edge}
    for _ in range(_REFINE_PASSES):
        adjusted = False
        for a, b in sorted(pairs):
            forward = by_edge.get((a, b))
            backward = by_edge.get((b, a))
            if not forward or not backward:
                continue
            d_ab = min(
                c.received_at - offsets[b] - (c.sent_at - offsets[a]) for c in forward
            )
            d_ba = min(
                c.received_at - offsets[a] - (c.sent_at - offsets[b]) for c in backward
            )
            skew = (d_ab - d_ba) / 2.0
            if skew == 0.0:
                continue
            offsets[b] += skew / 2.0
            offsets[a] -= skew / 2.0
            adjusted = True
        if not adjusted:
            break
    return offsets


def extract_crossings(
    events_by_peer: Mapping[str, Iterable[TraceEvent]],
) -> list[Crossing]:
    """Matched send/receive pairs from the receive-side trace records.

    Every :data:`KIND_WIRE_RECV` event carries the sender's clock
    (``sent_at``, stamped into the wire meta at encode time), so one
    event is a complete crossing — no join against the sender's stream
    is needed.
    """
    crossings: list[Crossing] = []
    for peer, events in events_by_peer.items():
        for event in events:
            if event.kind != KIND_WIRE_RECV:
                continue
            detail = event.detail
            sent_at = detail.get("sent_at")
            src = detail.get("src")
            if sent_at is None or src is None:
                continue
            crossings.append(Crossing(str(src), peer, float(sent_at), event.time))
    return crossings


# ----------------------------------------------------------------------
# event alignment
# ----------------------------------------------------------------------
def align_events(
    events_by_peer: Mapping[str, Iterable[TraceEvent]],
    offsets: Mapping[str, float],
) -> MergedTrace:
    """Shift every peer's events onto the merged timeline and sort.

    Each peer's events get one constant offset subtracted, so per-peer
    ordering is preserved exactly; the final sort is stable, so
    same-timestamp events keep their within-peer order too.  For
    :data:`KIND_WIRE_RECV` events the sender's ``sent_at`` is rewritten
    to the aligned ``send_time`` (clamped to the receive time when
    residual skew would make latency negative — counted, never hidden).
    """
    merged = MergedTrace(events=[], offsets=dict(offsets))
    for peer, events in sorted(events_by_peer.items()):
        offset = float(offsets.get(peer, 0.0))
        count = 0
        for event in events:
            count += 1
            detail = event.detail
            if event.kind == KIND_WIRE_RECV and "sent_at" in detail:
                aligned_recv = event.time - offset
                src_offset = float(offsets.get(str(detail.get("src")), 0.0))
                send_time = float(detail["sent_at"]) - src_offset
                merged.crossings_matched += 1
                if send_time > aligned_recv:
                    merged.crossings_clamped += 1
                    send_time = aligned_recv
                detail = dict(detail)
                detail["send_time"] = send_time
            merged.events.append(
                TraceEvent(event.time - offset, event.source, event.kind, detail)
            )
        merged.events_by_peer[peer] = count
    merged.events.sort(key=lambda e: e.time)
    return merged


# ----------------------------------------------------------------------
# metric registries
# ----------------------------------------------------------------------
def _as_registry(source: "MetricsRegistry | Mapping[str, Any]") -> MetricsRegistry:
    if isinstance(source, MetricsRegistry):
        return source
    return MetricsRegistry.from_snapshot(source)


def _snapshot_entry(
    metric: "Counter | Gauge | Histogram | QuantileSketch",
    help_text: str,
    labels: Mapping[str, str],
) -> dict[str, Any]:
    """Snapshot-shaped dict for one instrument with replacement labels.

    Adoption into another registry goes through the snapshot insertion
    path so bucket bounds are copied verbatim (recomputing them from
    ``base``/``growth`` would risk float drift and a spurious bounds
    mismatch on a later merge) and so the usual kind/name validation
    applies.
    """
    entry: dict[str, Any] = {
        "name": metric.name,
        "kind": metric.kind,
        "labels": [[k, v] for k, v in labels.items()],
        "help": help_text,
    }
    if isinstance(metric, Histogram):
        entry.update(
            bounds=list(metric.bounds),
            counts=list(metric.counts),
            inf_count=metric.inf_count,
            total=metric.total,
            count=metric.count,
        )
    elif isinstance(metric, QuantileSketch):
        entry.update(metric.state())
    else:
        entry["value"] = metric.value
    return entry


def merge_registries(
    per_peer: Mapping[str, "MetricsRegistry | Mapping[str, Any]"],
    *,
    label: str = "peer",
) -> MetricsRegistry:
    """One cluster-level registry: every instrument gains a peer label.

    ``per_peer`` maps a peer name to its registry (or its
    :meth:`~repro.obs.metrics.MetricsRegistry.to_snapshot` payload, as
    shipped over the control protocol).  Series from different peers
    can never collide — the added label disambiguates them — so this is
    a pure relabeling, not a numeric merge; use
    :func:`aggregate_registries` for cluster totals.
    """
    cluster = MetricsRegistry()
    for peer, source in sorted(per_peer.items()):
        registry = _as_registry(source)
        for metric in registry:
            labels = dict(metric.labels)
            if label in labels:
                raise ConfigurationError(
                    f"peer {peer!r} metric {metric.name!r} already carries the "
                    f"reserved merge label {label!r}={labels[label]!r}"
                )
            labels[label] = peer
            help_text = registry._help.get(metric.name, "")
            cluster._insert_snapshot_entry(_snapshot_entry(metric, help_text, labels))
    return cluster


def merge_histograms(target: Histogram, source: Histogram) -> Histogram:
    """Bucket-wise merge of ``source`` into ``target`` (same bounds).

    Because buckets are fixed intervals, adding counts bucket-by-bucket
    yields exactly the histogram that observing the union of both raw
    sample sets would have produced — the property the hypothesis suite
    asserts.
    """
    if target.bounds != source.bounds:
        raise ConfigurationError(
            f"cannot merge histogram {source.name!r}: bucket bounds differ "
            f"({len(target.bounds)} vs {len(source.bounds)} buckets)"
        )
    for i, count in enumerate(source.counts):
        target.counts[i] += count
    target.inf_count += source.inf_count
    target.total += source.total
    target.count += source.count
    return target


def merge_sketches(target: QuantileSketch, source: QuantileSketch) -> QuantileSketch:
    """Level-wise merge of ``source`` into ``target`` (same ``k``).

    Weight conservation makes the merged sketch summarize exactly the
    union of both raw streams, so merged quantiles match pooled-stream
    quantiles within the sketch's rank-error bound — associatively and
    commutatively, which is what lets cross-peer tail percentiles drop
    raw-sample pooling entirely.
    """
    return target.merge(source)


def aggregate_registries(
    sources: Iterable["MetricsRegistry | Mapping[str, Any]"],
) -> MetricsRegistry:
    """Collapse same-series instruments across inputs into totals.

    Counters sum (so the operation is associative and commutative up to
    float addition), gauges keep the last writer in input order,
    histograms merge bucket-wise via :func:`merge_histograms`, and
    quantile sketches merge level-wise via :func:`merge_sketches`.
    Inputs disagreeing on a metric's *kind* are a configuration error,
    same as within one registry.
    """
    out = MetricsRegistry()
    for source in sources:
        registry = _as_registry(source)
        for metric in registry:
            labels = dict(metric.labels)
            help_text = registry._help.get(metric.name, "")
            if isinstance(metric, Counter):
                out.counter(metric.name, labels, help=help_text).inc(metric.value)
            elif isinstance(metric, Gauge):
                out.gauge(metric.name, labels, help=help_text).set(metric.value)
            elif isinstance(metric, (Histogram, QuantileSketch)):
                kind = metric.kind
                known = out._kinds.get(metric.name)
                if known is not None and known != kind:
                    raise ConfigurationError(
                        f"metric {metric.name!r} is a {known}, not a {kind}"
                    )
                existing = out.get(metric.name, labels)
                if existing is None:
                    out._insert_snapshot_entry(
                        _snapshot_entry(metric, help_text, labels)
                    )
                elif isinstance(metric, Histogram):
                    assert isinstance(existing, Histogram)
                    merge_histograms(existing, metric)
                else:
                    assert isinstance(existing, QuantileSketch)
                    merge_sketches(existing, metric)
    return out


def correct_edge_sketches(
    registry: MetricsRegistry, offsets: Mapping[str, float]
) -> int:
    """Apply clock-offset corrections to the edge latency sketches.

    A peer records edge latency as ``recv@dst_clock - sent@src_clock``;
    with per-peer offsets (peer clock minus the merged timeline) the
    true latency adds ``offsets[src] - offsets[dst]`` — one constant per
    directed edge, so shifting the finished sketch is *exact*, not an
    approximation.  Negative corrected values clamp to zero, mirroring
    :func:`align_events`.  Returns the number of sketches corrected.

    Mutates ``registry`` in place; call once, on the coordinator's
    aggregated registry, after :func:`estimate_offsets`.
    """
    from repro.obs.tails import EDGE_METRIC

    corrected = 0
    for sketch in registry.sketches():
        if sketch.name != EDGE_METRIC or sketch.count == 0:
            continue
        labels = dict(sketch.labels)
        src = labels.get("src")
        dst = labels.get("dst")
        if src is None or dst is None:
            continue
        delta_us = (
            float(offsets.get(src, 0.0)) - float(offsets.get(dst, 0.0))
        ) * 1e6
        sketch.shift(delta_us, floor=0.0)
        corrected += 1
    return corrected
