"""Post-run trace analysis: ``python -m repro obs analyze trace.jsonl``.

Reads a trace exported by the observability plane (either the JSONL or
the Chrome trace-event format) and reconstructs the run's story:

* **queue-depth timelines** — total and per-node pending entries over
  time, from the sampler's ``obs.sample`` records;
* **NIC utilization timelines** — per-NIC busy fraction per sample
  interval;
* an **aggregation-opportunity miss summary** — from the optimizer's
  ``optimizer.decide`` records: how many dispatches had a *wider*
  candidate plan available (more segments aggregated) that lost on
  score, how the search budget was spent, which channels leave the
  most aggregation on the table, and — when the tuner is on — how
  decisions split across regimes and how many were served from a
  specialized fast path (and by which specialization);
* a **cross-peer view** — on a merged multi-process trace (see
  :mod:`repro.obs.merge`): per-edge one-way latency percentiles from
  the correlated ``live.recv`` records, the aggregation ratio achieved
  on each wire (segments per data packet, per ``src->dst`` edge),
  retransmit storms (bursts of ``rel.retransmit`` events), and
  hold-timer starvation (samples where a Nagle hold was armed while
  every NIC sat idle — traffic waiting on a timer with the wire free).

Everything renders as ASCII so it works over SSH next to the
simulation; open the same file in https://ui.perfetto.dev for the
interactive version.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.export import load_events
from repro.util.tracing import TraceEvent
from repro.util.units import format_time

__all__ = [
    "TraceAnalysis",
    "analyze_events",
    "analyze_file",
    "summary_metrics",
    "main",
]

_BLOCKS = "▁▂▃▄▅▆▇█"

#: Retransmit events closer together than this (seconds) form a burst;
#: a burst of :data:`_STORM_SIZE` or more counts as a storm.
_STORM_GAP = 0.01
_STORM_SIZE = 3


def _sparkline(values: list[float], width: int = 60) -> str:
    """Downsample to ``width`` buckets (bucket mean) and render blocks."""
    if not values:
        return ""
    if len(values) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max((i + 1) * len(values) // width, lo + 1)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    top = max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    return "".join(_BLOCKS[min(int(v / top * (len(_BLOCKS) - 1)), 7)] for v in values)


@dataclass
class _Series:
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t: float, v: float) -> None:
        self.times.append(t)
        self.values.append(v)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def peak(self) -> tuple[float, float]:
        """(time, value) of the maximum (0, 0 when empty)."""
        if not self.values:
            return (0.0, 0.0)
        i = max(range(len(self.values)), key=self.values.__getitem__)
        return (self.times[i], self.values[i])


@dataclass
class _EdgeStats:
    """One-way latency samples for one ``src->dst`` wire edge."""

    latencies: list[float] = field(default_factory=list)
    times: list[float] = field(default_factory=list)  #: arrival times (parallel)
    clamped: int = 0  #: crossings whose aligned latency was clamped to 0

    def percentile(self, q: float) -> float:
        """Linearly interpolated quantile (numpy's default definition).

        Rank ``q * (n - 1)`` interpolates between the two straddling
        order statistics, so p99 of 200 samples no longer snaps to a
        single sample the way nearest-rank did — this is the exact
        reference the online sketches are tested against.
        """
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0.0, min(q, 1.0)) * (len(ordered) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = rank - lower
        return ordered[lower] + fraction * (ordered[upper] - ordered[lower])

    @property
    def count(self) -> int:
        return len(self.latencies)


@dataclass
class _WireAgg:
    """Aggregation accounting for one ``src->dst`` wire edge."""

    data_packets: int = 0
    segments: int = 0
    payload_bytes: int = 0

    @property
    def ratio(self) -> float:
        return self.segments / self.data_packets if self.data_packets else 0.0


@dataclass
class TraceAnalysis:
    """Everything ``analyze`` learned from one trace."""

    n_events: int = 0
    kinds: dict[str, int] = field(default_factory=dict)
    span: tuple[float, float] = (0.0, 0.0)
    #: total backlog entries over time (from obs.sample).
    backlog: _Series = field(default_factory=_Series)
    #: node -> queue-depth series.
    node_depth: dict[str, _Series] = field(default_factory=dict)
    #: NIC -> busy-fraction series.
    nic_busy: dict[str, _Series] = field(default_factory=dict)
    retransmits: _Series = field(default_factory=_Series)
    #: decide-record accounting.
    decides: int = 0
    misses: int = 0
    width_sum: float = 0.0
    widest_sum: float = 0.0
    truncation: dict[str, int] = field(default_factory=dict)
    #: "node/channel" -> misses.
    miss_by_channel: dict[str, int] = field(default_factory=dict)
    #: regime label -> decide records carrying it (tuner or auto strategy).
    regimes: dict[str, int] = field(default_factory=dict)
    #: decide records served from a tuner specialization.
    specialized: int = 0
    #: specialization id -> decide records it served.
    specializations: dict[str, int] = field(default_factory=dict)
    #: cross-peer view: "src->dst" -> correlated one-way latencies.
    edges: dict[str, _EdgeStats] = field(default_factory=dict)
    #: "src->dst" -> per-wire aggregation accounting (from nic.send).
    wire_agg: dict[str, _WireAgg] = field(default_factory=dict)
    retransmit_count: int = 0
    retransmit_storms: int = 0
    #: obs.sample ticks where a hold timer was armed with every NIC idle.
    hold_starved_samples: int = 0
    hold_starved_streak: int = 0  #: longest consecutive run of the above
    samples: int = 0  #: obs.sample ticks seen
    #: flight-recorder accounting from an ``obs.truncated`` marker.
    trace_seen: int | None = None
    trace_dropped: int = 0
    #: causal blame per edge: "src->dst" -> blame summary (see obs.causal).
    blame: dict[str, dict] = field(default_factory=dict)
    blame_messages: int = 0
    blame_incomplete: int = 0

    @property
    def truncated(self) -> bool:
        """The input trace lost events to ring-buffer eviction."""
        return self.trace_dropped > 0

    @property
    def miss_fraction(self) -> float:
        return self.misses / self.decides if self.decides else 0.0

    @property
    def specialized_fraction(self) -> float:
        return self.specialized / self.decides if self.decides else 0.0

    @property
    def crossings(self) -> int:
        """Correlated wire crossings (live.recv records with latency)."""
        return sum(edge.count for edge in self.edges.values())


def analyze_events(events: list[TraceEvent]) -> TraceAnalysis:
    """Run the full analysis over normalized trace events."""
    from repro.obs.causal import attribute_chain
    from repro.obs.spans import SpanCollector

    analysis = TraceAnalysis()
    analysis.n_events = len(events)
    if events:
        analysis.span = (events[0].time, max(e.time for e in events))
    retransmit_times: list[float] = []
    streak = 0
    spans = SpanCollector()
    for event in events:
        analysis.kinds[event.kind] = analysis.kinds.get(event.kind, 0) + 1
        spans.ingest(event)
        if event.kind == "obs.sample":
            starved = _ingest_sample(analysis, event)
            analysis.samples += 1
            streak = streak + 1 if starved else 0
            if starved:
                analysis.hold_starved_samples += 1
                analysis.hold_starved_streak = max(
                    analysis.hold_starved_streak, streak
                )
        elif event.kind == "optimizer.decide":
            _ingest_decide(analysis, event)
        elif event.kind == "live.recv":
            _ingest_crossing(analysis, event)
        elif event.kind == "nic.send":
            _ingest_send(analysis, event)
        elif event.kind == "rel.retransmit":
            retransmit_times.append(event.time)
    analysis.retransmit_count = len(retransmit_times)
    analysis.retransmit_storms = _count_storms(retransmit_times)
    spans.finish()
    analysis.trace_seen = spans.trace_seen
    analysis.trace_dropped = spans.trace_dropped
    analysis.blame_incomplete = spans.incomplete
    blame_edges: dict[str, dict] = {}
    for chain in spans.drain_completed():
        blame = attribute_chain(chain, spans.hold_windows)
        if blame is None:
            continue
        analysis.blame_messages += 1
        slot = blame_edges.setdefault(
            blame.edge, {"messages": 0, "e2e_s": 0.0, "buckets_s": {}}
        )
        slot["messages"] += 1
        slot["e2e_s"] += blame.e2e
        for bucket, value in blame.buckets.items():
            slot["buckets_s"][bucket] = slot["buckets_s"].get(bucket, 0.0) + value
    for slot in blame_edges.values():
        e2e = slot["e2e_s"]
        slot["fractions"] = {
            bucket: (value / e2e if e2e > 0 else 0.0)
            for bucket, value in slot["buckets_s"].items()
        }
    analysis.blame = blame_edges
    return analysis


def _count_storms(times: list[float]) -> int:
    """Bursts of >= _STORM_SIZE retransmits within _STORM_GAP gaps."""
    storms = 0
    burst = 0
    previous: float | None = None
    for t in sorted(times):
        burst = burst + 1 if previous is not None and t - previous <= _STORM_GAP else 1
        if burst == _STORM_SIZE:  # count each burst once, as it forms
            storms += 1
        previous = t
    return storms


def _ingest_sample(analysis: TraceAnalysis, event: TraceEvent) -> bool:
    """Ingest one sampler tick; returns True when it shows hold starvation
    (a Nagle hold armed while every sampled NIC sat idle)."""
    detail = event.detail
    t = event.time
    backlog = detail.get("backlog")
    if backlog is not None:
        analysis.backlog.add(t, backlog)
    per_node: dict[str, float] = {}
    for key, pair in (detail.get("queues") or {}).items():
        node = str(key).split("/", 1)[0]
        per_node[node] = per_node.get(node, 0.0) + pair[0]
    for node, depth in per_node.items():
        analysis.node_depth.setdefault(node, _Series()).add(t, depth)
    busy = detail.get("nic_busy") or {}
    for nic_name, fraction in busy.items():
        analysis.nic_busy.setdefault(nic_name, _Series()).add(t, fraction)
    retrans = detail.get("retransmits_in_flight")
    if retrans is not None:
        analysis.retransmits.add(t, retrans)
    holds = detail.get("holds_armed") or 0
    return bool(holds) and bool(busy) and max(busy.values()) == 0.0


def _ingest_crossing(analysis: TraceAnalysis, event: TraceEvent) -> None:
    """One correlated wire crossing (live.recv with a send timestamp)."""
    detail = event.detail
    src = detail.get("src")
    send_time = detail.get("send_time", detail.get("sent_at"))
    if src is None or send_time is None:
        return
    dst = detail.get("dst") or event.source.partition(":")[2] or "?"
    edge = analysis.edges.setdefault(f"{src}->{dst}", _EdgeStats())
    latency = event.time - float(send_time)
    if latency < 0:  # unaligned raw clocks can do this; never report it
        latency = 0.0
        edge.clamped += 1
    edge.latencies.append(latency)
    edge.times.append(event.time)


def _ingest_send(analysis: TraceAnalysis, event: TraceEvent) -> None:
    """Per-wire aggregation accounting from a data-packet nic.send."""
    detail = event.detail
    if detail.get("packet_kind") != "data":
        return
    dst = detail.get("dst")
    node = event.source.partition(":")[2].split(".", 1)[0]
    if dst is None or not node:
        return
    wire = analysis.wire_agg.setdefault(f"{node}->{dst}", _WireAgg())
    wire.data_packets += 1
    wire.segments += int(detail.get("segments", 0) or 0)
    wire.payload_bytes += int(detail.get("bytes", 0) or 0)


def _ingest_decide(analysis: TraceAnalysis, event: TraceEvent) -> None:
    detail = event.detail
    analysis.decides += 1
    items = detail.get("items", 0) or 0
    widest = detail.get("widest_items")
    analysis.width_sum += items
    if widest is not None:
        analysis.widest_sum += widest
        if widest > items:
            analysis.misses += 1
            node = event.source.partition(":")[2]
            channel = detail.get("channel", "?")
            key = f"{node}/{channel}"
            analysis.miss_by_channel[key] = analysis.miss_by_channel.get(key, 0) + 1
    truncation = detail.get("truncation")
    if truncation is not None:
        analysis.truncation[truncation] = analysis.truncation.get(truncation, 0) + 1
    regime = detail.get("tuner_regime", detail.get("regime"))
    if regime is not None:
        analysis.regimes[regime] = analysis.regimes.get(regime, 0) + 1
    if detail.get("tuner_path") == "specialized":
        analysis.specialized += 1
        spec_id = detail.get("specialization")
        if spec_id is not None:
            analysis.specializations[spec_id] = (
                analysis.specializations.get(spec_id, 0) + 1
            )


def analyze_file(path: str | Path) -> TraceAnalysis:
    """Load a trace file (JSONL or Chrome JSON) and analyze it."""
    return analyze_events(load_events(path))


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render(analysis: TraceAnalysis, *, width: int = 60, top: int = 5) -> str:
    """ASCII report of an analysis: timelines + decision summary."""
    lines: list[str] = []
    if analysis.truncated:
        from repro.obs.causal import truncation_warning

        lines.append(
            truncation_warning(analysis.trace_dropped, analysis.trace_seen)
        )
        lines.append("")
    t0, t1 = analysis.span
    lines.append(
        f"events: {analysis.n_events}  kinds: {len(analysis.kinds)}  "
        f"span: {format_time(t0)} … {format_time(t1)}"
    )

    if analysis.backlog.values:
        lines.append("")
        lines.append("queue depth (pending entries):")
        peak_t, peak_v = analysis.backlog.peak
        lines.append(
            f"  total {'':<10} {_sparkline(analysis.backlog.values, width)} "
            f"peak {peak_v:.0f} @ {format_time(peak_t)}  mean {analysis.backlog.mean:.1f}"
        )
        for node in sorted(analysis.node_depth):
            series = analysis.node_depth[node]
            _, peak_v = series.peak
            lines.append(
                f"  {node:<16} {_sparkline(series.values, width)} "
                f"peak {peak_v:.0f}  mean {series.mean:.1f}"
            )
    else:
        lines.append("")
        lines.append(
            "queue depth: no obs.sample records "
            "(run with observability.sample_interval or --sample-interval)"
        )

    if analysis.nic_busy:
        lines.append("")
        lines.append("NIC utilization (busy fraction per sample interval):")
        for nic_name in sorted(analysis.nic_busy):
            series = analysis.nic_busy[nic_name]
            lines.append(
                f"  {nic_name:<16} {_sparkline(series.values, width)} "
                f"mean {series.mean:6.1%}"
            )
    if analysis.retransmits.values and max(analysis.retransmits.values) > 0:
        lines.append("")
        series = analysis.retransmits
        lines.append(
            f"retransmits in flight: {_sparkline(series.values, width)} "
            f"peak {series.peak[1]:.0f}"
        )

    if analysis.edges:
        lines.append("")
        lines.append("cross-peer wire crossings (correlated one-way latency):")
        name_width = max(len(e) for e in analysis.edges)
        for edge_name in sorted(analysis.edges):
            edge = analysis.edges[edge_name]
            clamp = f"  clamped {edge.clamped}" if edge.clamped else ""
            lines.append(
                f"  {edge_name:<{name_width}}  n={edge.count:<6} "
                f"p50 {format_time(edge.percentile(0.50))}  "
                f"p90 {format_time(edge.percentile(0.90))}  "
                f"p99 {format_time(edge.percentile(0.99))}  "
                f"p999 {format_time(edge.percentile(0.999))}  "
                f"max {format_time(edge.percentile(1.0))}{clamp}"
            )

    if analysis.wire_agg:
        lines.append("")
        lines.append("aggregation per wire (segments per data packet):")
        name_width = max(len(w) for w in analysis.wire_agg)
        for wire_name in sorted(analysis.wire_agg):
            wire = analysis.wire_agg[wire_name]
            lines.append(
                f"  {wire_name:<{name_width}}  ratio {wire.ratio:5.2f}  "
                f"({wire.segments} segments / {wire.data_packets} packets, "
                f"{wire.payload_bytes} B)"
            )

    if analysis.retransmit_count:
        lines.append("")
        lines.append(
            f"retransmit events: {analysis.retransmit_count} "
            f"({analysis.retransmit_storms} storm(s): >= {_STORM_SIZE} within "
            f"{_STORM_GAP * 1e3:.0f} ms gaps)"
        )
    if analysis.hold_starved_samples:
        lines.append("")
        lines.append(
            f"hold-timer starvation: {analysis.hold_starved_samples}/"
            f"{analysis.samples} samples had a Nagle hold armed with every "
            f"NIC idle (longest streak {analysis.hold_starved_streak})"
        )

    if analysis.blame:
        lines.append("")
        lines.append(
            f"causal blame per edge ({analysis.blame_messages} message(s) "
            f"attributed, {analysis.blame_incomplete} incomplete; "
            "see 'obs why' for waterfalls):"
        )
        name_width = max(len(e) for e in analysis.blame)
        for edge_name in sorted(analysis.blame):
            slot = analysis.blame[edge_name]
            dominant = sorted(
                (
                    (bucket, frac)
                    for bucket, frac in slot["fractions"].items()
                    if frac > 0
                ),
                key=lambda kv: -kv[1],
            )[:3]
            parts = "  ".join(f"{b}={f:.1%}" for b, f in dominant)
            lines.append(
                f"  {edge_name:<{name_width}}  n={slot['messages']:<5} "
                f"{parts or 'all zero'}"
            )

    lines.append("")
    lines.append("aggregation opportunities (optimizer.decide records):")
    if analysis.decides:
        lines.append(f"  dispatches with decide records : {analysis.decides}")
        lines.append(
            f"  wider plan existed but lost    : {analysis.misses} "
            f"({analysis.miss_fraction:.1%})"
        )
        lines.append(
            f"  mean winning width             : "
            f"{analysis.width_sum / analysis.decides:.2f} segments"
        )
        if analysis.widest_sum:
            lines.append(
                f"  mean widest candidate          : "
                f"{analysis.widest_sum / analysis.decides:.2f} segments"
            )
        if analysis.truncation:
            spent = "  ".join(
                f"{reason}={count}" for reason, count in sorted(analysis.truncation.items())
            )
            lines.append(f"  search stopped by              : {spent}")
        if analysis.miss_by_channel:
            offenders = sorted(
                analysis.miss_by_channel.items(), key=lambda kv: -kv[1]
            )[:top]
            lines.append("  most-missed channels           : " + ", ".join(
                f"{key} ×{count}" for key, count in offenders
            ))
        if analysis.regimes:
            by_regime = "  ".join(
                f"{regime}={count}"
                for regime, count in sorted(analysis.regimes.items())
            )
            lines.append(f"  decisions by regime            : {by_regime}")
        if analysis.specialized:
            lines.append(
                f"  specialized fast path          : {analysis.specialized} "
                f"({analysis.specialized_fraction:.1%})"
            )
            for spec_id, count in sorted(
                analysis.specializations.items(), key=lambda kv: -kv[1]
            )[:top]:
                lines.append(f"    {spec_id:<28} ×{count}")
    else:
        lines.append(
            "  no decide records (use the 'search' strategy with tracing on)"
        )
    return "\n".join(lines)


def summary_metrics(analysis: TraceAnalysis) -> dict[str, float]:
    """Flatten an analysis into the scalar map ``obs diff`` compares.

    Keys are stable identifiers (``edge/n0->n1/latency_p50_us``), values
    plain floats, so two analyses — or an analysis and a checked-in
    baseline — diff mechanically.
    """
    out: dict[str, float] = {
        "trace/events": float(analysis.n_events),
        "trace/samples": float(analysis.samples),
        "decide/records": float(analysis.decides),
        "decide/miss_fraction": analysis.miss_fraction,
        "decide/specialized_fraction": analysis.specialized_fraction,
        "retransmit/events": float(analysis.retransmit_count),
        "retransmit/storms": float(analysis.retransmit_storms),
        "hold/starved_samples": float(analysis.hold_starved_samples),
        "hold/starved_streak": float(analysis.hold_starved_streak),
        "crossings/total": float(analysis.crossings),
        "crossings/clamped": float(
            sum(edge.clamped for edge in analysis.edges.values())
        ),
    }
    if analysis.backlog.values:
        out["backlog/mean"] = analysis.backlog.mean
        out["backlog/peak"] = analysis.backlog.peak[1]
    for edge_name, edge in sorted(analysis.edges.items()):
        prefix = f"edge/{edge_name}"
        out[f"{prefix}/crossings"] = float(edge.count)
        out[f"{prefix}/latency_p50_us"] = edge.percentile(0.50) * 1e6
        out[f"{prefix}/latency_p90_us"] = edge.percentile(0.90) * 1e6
        out[f"{prefix}/latency_p99_us"] = edge.percentile(0.99) * 1e6
        out[f"{prefix}/latency_p999_us"] = edge.percentile(0.999) * 1e6
        out[f"{prefix}/latency_max_us"] = edge.percentile(1.0) * 1e6
    for wire_name, wire in sorted(analysis.wire_agg.items()):
        prefix = f"wire/{wire_name}"
        out[f"{prefix}/ratio"] = wire.ratio
        out[f"{prefix}/data_packets"] = float(wire.data_packets)
        out[f"{prefix}/segments"] = float(wire.segments)
    out["blame/messages"] = float(analysis.blame_messages)
    if analysis.trace_dropped:
        out["trace/dropped"] = float(analysis.trace_dropped)
    for edge_name, slot in sorted(analysis.blame.items()):
        for bucket, fraction in sorted(slot["fractions"].items()):
            out[f"blame/{edge_name}/{bucket}_fraction"] = fraction
    return out


def main(args) -> int:
    """Entry point for ``python -m repro obs analyze``."""
    path = Path(args.trace)
    try:
        print(f"== observability analysis: {path} ==")
        analysis = analyze_file(path)
        print(render(analysis, width=args.width, top=args.top))
        if analysis.truncated:
            from repro.obs.causal import truncation_warning

            print(
                truncation_warning(analysis.trace_dropped, analysis.trace_seen),
                file=sys.stderr,
            )
    except BrokenPipeError:  # e.g. piped into head; not an error
        return 0
    return 0
