"""Post-run trace analysis: ``python -m repro obs analyze trace.jsonl``.

Reads a trace exported by the observability plane (either the JSONL or
the Chrome trace-event format) and reconstructs the run's story:

* **queue-depth timelines** — total and per-node pending entries over
  time, from the sampler's ``obs.sample`` records;
* **NIC utilization timelines** — per-NIC busy fraction per sample
  interval;
* an **aggregation-opportunity miss summary** — from the optimizer's
  ``optimizer.decide`` records: how many dispatches had a *wider*
  candidate plan available (more segments aggregated) that lost on
  score, how the search budget was spent, and which channels leave the
  most aggregation on the table.

Everything renders as ASCII so it works over SSH next to the
simulation; open the same file in https://ui.perfetto.dev for the
interactive version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.export import load_events
from repro.util.tracing import TraceEvent
from repro.util.units import format_time

__all__ = ["TraceAnalysis", "analyze_events", "analyze_file", "main"]

_BLOCKS = "▁▂▃▄▅▆▇█"


def _sparkline(values: list[float], width: int = 60) -> str:
    """Downsample to ``width`` buckets (bucket mean) and render blocks."""
    if not values:
        return ""
    if len(values) > width:
        bucketed = []
        for i in range(width):
            lo = i * len(values) // width
            hi = max((i + 1) * len(values) // width, lo + 1)
            chunk = values[lo:hi]
            bucketed.append(sum(chunk) / len(chunk))
        values = bucketed
    top = max(values)
    if top <= 0:
        return _BLOCKS[0] * len(values)
    return "".join(_BLOCKS[min(int(v / top * (len(_BLOCKS) - 1)), 7)] for v in values)


@dataclass
class _Series:
    times: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def add(self, t: float, v: float) -> None:
        self.times.append(t)
        self.values.append(v)

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values) if self.values else 0.0

    @property
    def peak(self) -> tuple[float, float]:
        """(time, value) of the maximum (0, 0 when empty)."""
        if not self.values:
            return (0.0, 0.0)
        i = max(range(len(self.values)), key=self.values.__getitem__)
        return (self.times[i], self.values[i])


@dataclass
class TraceAnalysis:
    """Everything ``analyze`` learned from one trace."""

    n_events: int = 0
    kinds: dict[str, int] = field(default_factory=dict)
    span: tuple[float, float] = (0.0, 0.0)
    #: total backlog entries over time (from obs.sample).
    backlog: _Series = field(default_factory=_Series)
    #: node -> queue-depth series.
    node_depth: dict[str, _Series] = field(default_factory=dict)
    #: NIC -> busy-fraction series.
    nic_busy: dict[str, _Series] = field(default_factory=dict)
    retransmits: _Series = field(default_factory=_Series)
    #: decide-record accounting.
    decides: int = 0
    misses: int = 0
    width_sum: float = 0.0
    widest_sum: float = 0.0
    truncation: dict[str, int] = field(default_factory=dict)
    #: "node/channel" -> misses.
    miss_by_channel: dict[str, int] = field(default_factory=dict)

    @property
    def miss_fraction(self) -> float:
        return self.misses / self.decides if self.decides else 0.0


def analyze_events(events: list[TraceEvent]) -> TraceAnalysis:
    """Run the full analysis over normalized trace events."""
    analysis = TraceAnalysis()
    analysis.n_events = len(events)
    if events:
        analysis.span = (events[0].time, max(e.time for e in events))
    for event in events:
        analysis.kinds[event.kind] = analysis.kinds.get(event.kind, 0) + 1
        if event.kind == "obs.sample":
            _ingest_sample(analysis, event)
        elif event.kind == "optimizer.decide":
            _ingest_decide(analysis, event)
    return analysis


def _ingest_sample(analysis: TraceAnalysis, event: TraceEvent) -> None:
    detail = event.detail
    t = event.time
    backlog = detail.get("backlog")
    if backlog is not None:
        analysis.backlog.add(t, backlog)
    per_node: dict[str, float] = {}
    for key, pair in (detail.get("queues") or {}).items():
        node = str(key).split("/", 1)[0]
        per_node[node] = per_node.get(node, 0.0) + pair[0]
    for node, depth in per_node.items():
        analysis.node_depth.setdefault(node, _Series()).add(t, depth)
    for nic_name, fraction in (detail.get("nic_busy") or {}).items():
        analysis.nic_busy.setdefault(nic_name, _Series()).add(t, fraction)
    retrans = detail.get("retransmits_in_flight")
    if retrans is not None:
        analysis.retransmits.add(t, retrans)


def _ingest_decide(analysis: TraceAnalysis, event: TraceEvent) -> None:
    detail = event.detail
    analysis.decides += 1
    items = detail.get("items", 0) or 0
    widest = detail.get("widest_items")
    analysis.width_sum += items
    if widest is not None:
        analysis.widest_sum += widest
        if widest > items:
            analysis.misses += 1
            node = event.source.partition(":")[2]
            channel = detail.get("channel", "?")
            key = f"{node}/{channel}"
            analysis.miss_by_channel[key] = analysis.miss_by_channel.get(key, 0) + 1
    truncation = detail.get("truncation")
    if truncation is not None:
        analysis.truncation[truncation] = analysis.truncation.get(truncation, 0) + 1


def analyze_file(path: str | Path) -> TraceAnalysis:
    """Load a trace file (JSONL or Chrome JSON) and analyze it."""
    return analyze_events(load_events(path))


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def render(analysis: TraceAnalysis, *, width: int = 60, top: int = 5) -> str:
    """ASCII report of an analysis: timelines + decision summary."""
    lines: list[str] = []
    t0, t1 = analysis.span
    lines.append(
        f"events: {analysis.n_events}  kinds: {len(analysis.kinds)}  "
        f"span: {format_time(t0)} … {format_time(t1)}"
    )

    if analysis.backlog.values:
        lines.append("")
        lines.append("queue depth (pending entries):")
        peak_t, peak_v = analysis.backlog.peak
        lines.append(
            f"  total {'':<10} {_sparkline(analysis.backlog.values, width)} "
            f"peak {peak_v:.0f} @ {format_time(peak_t)}  mean {analysis.backlog.mean:.1f}"
        )
        for node in sorted(analysis.node_depth):
            series = analysis.node_depth[node]
            _, peak_v = series.peak
            lines.append(
                f"  {node:<16} {_sparkline(series.values, width)} "
                f"peak {peak_v:.0f}  mean {series.mean:.1f}"
            )
    else:
        lines.append("")
        lines.append(
            "queue depth: no obs.sample records "
            "(run with observability.sample_interval or --sample-interval)"
        )

    if analysis.nic_busy:
        lines.append("")
        lines.append("NIC utilization (busy fraction per sample interval):")
        for nic_name in sorted(analysis.nic_busy):
            series = analysis.nic_busy[nic_name]
            lines.append(
                f"  {nic_name:<16} {_sparkline(series.values, width)} "
                f"mean {series.mean:6.1%}"
            )
    if analysis.retransmits.values and max(analysis.retransmits.values) > 0:
        lines.append("")
        series = analysis.retransmits
        lines.append(
            f"retransmits in flight: {_sparkline(series.values, width)} "
            f"peak {series.peak[1]:.0f}"
        )

    lines.append("")
    lines.append("aggregation opportunities (optimizer.decide records):")
    if analysis.decides:
        lines.append(f"  dispatches with decide records : {analysis.decides}")
        lines.append(
            f"  wider plan existed but lost    : {analysis.misses} "
            f"({analysis.miss_fraction:.1%})"
        )
        lines.append(
            f"  mean winning width             : "
            f"{analysis.width_sum / analysis.decides:.2f} segments"
        )
        if analysis.widest_sum:
            lines.append(
                f"  mean widest candidate          : "
                f"{analysis.widest_sum / analysis.decides:.2f} segments"
            )
        if analysis.truncation:
            spent = "  ".join(
                f"{reason}={count}" for reason, count in sorted(analysis.truncation.items())
            )
            lines.append(f"  search stopped by              : {spent}")
        if analysis.miss_by_channel:
            offenders = sorted(
                analysis.miss_by_channel.items(), key=lambda kv: -kv[1]
            )[:top]
            lines.append("  most-missed channels           : " + ", ".join(
                f"{key} ×{count}" for key, count in offenders
            ))
    else:
        lines.append(
            "  no decide records (use the 'search' strategy with tracing on)"
        )
    return "\n".join(lines)


def main(args) -> int:
    """Entry point for ``python -m repro obs analyze``."""
    path = Path(args.trace)
    try:
        print(f"== observability analysis: {path} ==")
        analysis = analyze_file(path)
        print(render(analysis, width=args.width, top=args.top))
    except BrokenPipeError:  # e.g. piped into head; not an error
        return 0
    return 0
