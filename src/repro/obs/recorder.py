"""Trace sinks: unbounded capture and the bounded flight recorder.

Both are plain callables — subscribe them to any
:class:`~repro.util.tracing.Tracer` — so the observability plane can
attach to a cluster's existing tracer after construction instead of
threading a special tracer through every component.

The :class:`RingBufferSink` is the **flight recorder** mode for long
runs: it keeps only the most recent ``capacity`` events (O(1) per
event, strictly bounded memory) and counts what it evicted, so a
multi-minute simulation can fly with tracing on and still hand the
final window to the exporters when something interesting happens at
the end.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceEvent, events_to_jsonl

__all__ = ["ListSink", "RingBufferSink", "truncation_marker"]


def truncation_marker(sink: "ListSink | RingBufferSink") -> TraceEvent:
    """A synthetic ``obs.truncated`` event recording eviction counts.

    Appended after the retained window when a trace is exported from a
    ring buffer that overflowed, so offline consumers (``obs analyze``,
    ``obs why``) can warn instead of silently reading a truncated run
    as a complete one.  Survives both JSONL and Chrome export formats.
    """
    events = sink.events
    return TraceEvent(
        time=events[-1].time if events else 0.0,
        source="obs:recorder",
        kind="obs.truncated",
        detail={
            "seen": sink.seen,
            "dropped": sink.dropped,
            "capacity": getattr(sink, "capacity", None),
        },
    )


class ListSink:
    """Keeps every event, in emission order."""

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def __call__(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    @property
    def seen(self) -> int:
        """Events received (none are ever dropped)."""
        return len(self.events)

    @property
    def dropped(self) -> int:
        return 0

    def to_jsonl(self) -> str:
        """The captured events as JSON Lines text."""
        return events_to_jsonl(self.events)


class RingBufferSink:
    """Keeps only the last ``capacity`` events (flight recorder)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"ring buffer capacity must be >= 1, got {capacity}"
            )
        self.capacity = capacity
        self._ring: deque[TraceEvent] = deque(maxlen=capacity)
        self.seen = 0

    def __call__(self, event: TraceEvent) -> None:
        self.seen += 1
        self._ring.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        """The retained window, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted to stay within ``capacity``."""
        return self.seen - len(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._ring)

    def to_jsonl(self) -> str:
        """The retained window as JSON Lines text."""
        return events_to_jsonl(self._ring)
