"""The observability plane (see docs/ARCHITECTURE.md §11).

Turns the per-component :class:`~repro.util.tracing.Tracer` hook into a
full observability subsystem: a metrics registry with Prometheus text
export, a periodic time-series sampler, decision-explainability
records from the optimizer, Chrome-trace/JSONL exporters (open the
result in https://ui.perfetto.dev), a bounded flight-recorder capture
mode, and a post-run analysis CLI.

Quick use::

    from repro.obs import ObservabilityConfig, ObservabilityPlane

    plane = ObservabilityPlane(ObservabilityConfig(sample_interval=1e-5))
    cluster = Cluster(...)
    plane.install(cluster)
    cluster.run_until_idle()
    plane.finalize()
    plane.write_trace("trace.json")      # Chrome/Perfetto format
    plane.write_metrics("metrics.prom")  # Prometheus text exposition

or declaratively via a scenario's ``"observability"`` block and the
``python -m repro run … --trace-out/--metrics-out`` flags.

For *distributed* (multi-process live) runs the plane extends across
peers: :mod:`repro.obs.merge` aligns per-peer clocks and merges trace
streams and registries, :mod:`repro.obs.serve` exposes the cluster
registry over HTTP during the run, and :mod:`repro.obs.diff` gates two
runs against each other (``python -m repro obs diff A B --check``).
"""

from repro.obs.causal import (
    BLAME_BUCKETS,
    CausalReport,
    MessageBlame,
    TailExemplars,
    attribute_chain,
    attribute_events,
    render_waterfall,
)
from repro.obs.export import load_events, to_chrome_trace, write_trace
from repro.obs.merge import (
    Crossing,
    MergedTrace,
    OffsetSample,
    aggregate_registries,
    align_events,
    correct_edge_sketches,
    estimate_offsets,
    extract_crossings,
    merge_histograms,
    merge_registries,
    merge_sketches,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    QuantileSketch,
)
from repro.obs.plane import ObservabilityConfig, ObservabilityPlane
from repro.obs.recorder import ListSink, RingBufferSink, truncation_marker
from repro.obs.sampler import ObservabilitySampler, ObsSample
from repro.obs.serve import ObsHTTPServer, parse_serve_address
from repro.obs.spans import Leg, MessageChain, SpanCollector
from repro.obs.tails import (
    SLObjective,
    SLOStatus,
    TailRecorder,
    TailStats,
    TailView,
    evaluate_slo,
    evaluate_slo_offline,
    parse_slo,
    pooled_message_sketch,
)

__all__ = [
    "BLAME_BUCKETS",
    "CausalReport",
    "Counter",
    "Crossing",
    "Gauge",
    "Histogram",
    "Leg",
    "ListSink",
    "MergedTrace",
    "MessageBlame",
    "MessageChain",
    "MetricsRegistry",
    "ObsHTTPServer",
    "ObsSample",
    "ObservabilityConfig",
    "ObservabilityPlane",
    "ObservabilitySampler",
    "OffsetSample",
    "QuantileSketch",
    "RingBufferSink",
    "SLObjective",
    "SLOStatus",
    "SpanCollector",
    "TailExemplars",
    "TailRecorder",
    "TailStats",
    "TailView",
    "aggregate_registries",
    "align_events",
    "attribute_chain",
    "attribute_events",
    "correct_edge_sketches",
    "estimate_offsets",
    "evaluate_slo",
    "evaluate_slo_offline",
    "extract_crossings",
    "load_events",
    "merge_histograms",
    "merge_registries",
    "merge_sketches",
    "parse_serve_address",
    "parse_slo",
    "pooled_message_sketch",
    "render_waterfall",
    "to_chrome_trace",
    "truncation_marker",
    "write_trace",
]
