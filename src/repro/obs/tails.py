"""Online tail-latency telemetry: recording, views, and SLO burn rates.

This module turns the quantile sketches of :mod:`repro.obs.sketch` into
a live answer to "how bad are the tails *right now*":

* :class:`TailRecorder` is a tracer sink (subscribed by the
  observability plane next to the ring buffer) that feeds three sketch
  families in the plane's registry:

  - ``repro_edge_latency_us{src,dst}`` — one-way wire latency per
    directed edge.  In the simulation it correlates each ``nic.send``
    with its ``rx.deliver`` by packet id; on a live peer it reads the
    send timestamp piggybacked on the frame (``live.recv``'s
    ``sent_at``), which is a *raw-clock* difference the coordinator
    later corrects by shifting the merged sketch with the estimated
    clock offset (:func:`repro.obs.merge.correct_edge_sketches`).
  - ``repro_nic_service_us{nic}`` — per-rail service time, the span
    from ``nic.send`` to that NIC's next ``nic.idle``.  Identical
    semantics in both planes (live NICs measure the kernel drain).
  - ``repro_message_latency_us{node}`` — submit-to-reassembly message
    latency from ``message.complete`` records.

* :class:`TailView` is the read side: cheap cached per-edge/per-rail
  p50/p90/p99/p999 lookups over those sketches, exposed on the plane
  and on each engine so a strategy *could* consult it.  This PR only
  logs a ``tail_hint`` in ``optimizer.decide`` records — the hint rides
  the tracing-only emit path, so dispatch stays byte-identical.

* :class:`SLObjective` + :func:`evaluate_slo` implement SRE-style
  burn-rate tracking: an objective says "``target`` of crossings on
  edges matching ``edge`` finish within ``threshold_us``"; the burn
  rate is the observed violating fraction divided by the error budget
  (``1 - target``), so burn ``>= 1`` means the budget is being spent at
  least as fast as it accrues.  Online evaluation (``/tails``) is
  cumulative over the sketches; offline evaluation (``repro obs tail``)
  is exact and multi-window over the trace's timestamped crossings — a
  violation requires *every* configured window to burn, which filters
  one-off spikes from sustained regressions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase
from typing import Any, Callable, Iterable, Mapping

from repro.obs.metrics import MetricsRegistry, QuantileSketch
from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceEvent

__all__ = [
    "EDGE_METRIC",
    "RAIL_METRIC",
    "MESSAGE_METRIC",
    "TailRecorder",
    "TailStats",
    "TailView",
    "SLObjective",
    "SLOStatus",
    "parse_slo",
    "pooled_message_sketch",
    "evaluate_slo",
    "evaluate_slo_offline",
    "main",
]

EDGE_METRIC = "repro_edge_latency_us"
RAIL_METRIC = "repro_nic_service_us"
MESSAGE_METRIC = "repro_message_latency_us"

_EDGE_HELP = "One-way wire latency per directed edge (microseconds)"
_RAIL_HELP = "Per-NIC service time, send to drained (microseconds)"
_MESSAGE_HELP = "Submit-to-reassembly message latency (microseconds)"

#: Quantiles every tail report speaks in.
TAIL_QUANTILES = (0.5, 0.9, 0.99, 0.999)

#: Unmatched sim sends kept for send→deliver correlation.  Live peers
#: never see the remote ``rx.deliver``, so their outbound sends would
#: accumulate forever without this cap (FIFO eviction).
_PENDING_CAP = 65536


class TailRecorder:
    """Tracer sink that feeds the tail sketches from trace events.

    Stateless toward the dispatch path: it only *reads* events the
    guarded emit sites already produce, so subscribing it cannot change
    what a run does — only what it knows about itself.
    """

    __slots__ = ("registry", "_pending", "_busy_since")

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        #: packet id -> (send time, src node) for sim send→deliver pairs.
        self._pending: dict[Any, tuple[float, str]] = {}
        #: nic name -> send time of the span currently in service.
        self._busy_since: dict[str, float] = {}

    def __call__(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == "nic.send":
            self._on_send(event)
        elif kind == "rx.deliver":
            self._on_deliver(event)
        elif kind == "nic.idle":
            self._on_idle(event)
        elif kind == "live.recv":
            self._on_live_recv(event)
        elif kind == "message.complete":
            self._on_complete(event)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_send(self, event: TraceEvent) -> None:
        nic_name = event.source.partition(":")[2]
        node = nic_name.split(".", 1)[0]
        packet_id = event.detail.get("packet")
        if packet_id is not None:
            pending = self._pending
            if len(pending) >= _PENDING_CAP:
                pending.pop(next(iter(pending)))
            pending[packet_id] = (event.time, node)
        # First send of a busy span starts the rail service clock; the
        # span ends at the NIC's next idle.
        self._busy_since.setdefault(nic_name, event.time)

    def _on_deliver(self, event: TraceEvent) -> None:
        sent = self._pending.pop(event.detail.get("packet"), None)
        if sent is None:
            return
        sent_at, src = sent
        dst = event.source.partition(":")[2]
        self._edge_sketch(src, dst).observe(max(event.time - sent_at, 0.0) * 1e6)

    def _on_idle(self, event: TraceEvent) -> None:
        nic_name = event.source.partition(":")[2]
        started = self._busy_since.pop(nic_name, None)
        if started is None:
            return
        self.registry.sketch(
            RAIL_METRIC, labels={"nic": nic_name}, help=_RAIL_HELP
        ).observe(max(event.time - started, 0.0) * 1e6)

    def _on_live_recv(self, event: TraceEvent) -> None:
        detail = event.detail
        sent_at = detail.get("sent_at")
        src = detail.get("src")
        if sent_at is None or src is None:
            return
        dst = detail.get("dst") or event.source.partition(":")[2] or "?"
        # Raw-clock difference: src stamped its clock, we read ours.
        # Clamp below zero (unaligned clocks) and let the coordinator
        # shift the merged sketch by the estimated offset afterwards.
        self._edge_sketch(str(src), str(dst)).observe(
            max(event.time - float(sent_at), 0.0) * 1e6
        )

    def _on_complete(self, event: TraceEvent) -> None:
        submit_time = event.detail.get("submit_time")
        if submit_time is None:
            return
        node = event.source.partition(":")[2]
        self.registry.sketch(
            MESSAGE_METRIC, labels={"node": node}, help=_MESSAGE_HELP
        ).observe(max(event.time - float(submit_time), 0.0) * 1e6)

    def _edge_sketch(self, src: str, dst: str) -> QuantileSketch:
        return self.registry.sketch(
            EDGE_METRIC, labels={"src": src, "dst": dst}, help=_EDGE_HELP
        )


@dataclass(frozen=True, slots=True)
class TailStats:
    """One sketch's tail summary (microsecond values)."""

    count: int
    p50_us: float
    p90_us: float
    p99_us: float
    p999_us: float
    mean_us: float
    max_us: float

    @classmethod
    def of(cls, sketch: QuantileSketch) -> "TailStats":
        p50, p90, p99, p999 = sketch.quantiles(TAIL_QUANTILES)
        return cls(
            count=sketch.count,
            p50_us=p50,
            p90_us=p90,
            p99_us=p99,
            p999_us=p999,
            mean_us=sketch.mean,
            max_us=sketch.maximum,
        )

    def to_dict(self) -> dict[str, float]:
        """JSON-able copy (the ``/tails`` payload entry)."""
        return {
            "count": self.count,
            "p50_us": self.p50_us,
            "p90_us": self.p90_us,
            "p99_us": self.p99_us,
            "p999_us": self.p999_us,
            "mean_us": self.mean_us,
            "max_us": self.max_us,
        }


class TailView:
    """Read-only cached tail lookups over a registry's sketches.

    The cache key is each sketch's observation count, so reads between
    updates cost two dict lookups — cheap enough to consult per
    dispatch, which is the contract the next PR's tail-aware rail
    selection relies on.
    """

    __slots__ = ("_registry", "_cache", "objectives")

    def __init__(
        self,
        registry: MetricsRegistry,
        objectives: "tuple[SLObjective, ...]" = (),
    ) -> None:
        self._registry = registry
        self._cache: dict[tuple[str, tuple], tuple[int, TailStats]] = {}
        self.objectives = objectives

    @property
    def registry(self) -> MetricsRegistry:
        return self._registry

    def _stats(self, sketch: QuantileSketch | None) -> TailStats | None:
        if sketch is None or sketch.count == 0:
            return None
        key = (sketch.name, sketch.labels)
        cached = self._cache.get(key)
        if cached is not None and cached[0] == sketch.count:
            return cached[1]
        stats = TailStats.of(sketch)
        self._cache[key] = (sketch.count, stats)
        return stats

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def edge(self, src: str, dst: str) -> TailStats | None:
        """Tails for one directed edge, or None before any crossing."""
        return self._stats(
            self._registry.get(EDGE_METRIC, {"src": src, "dst": dst})
        )

    def rail(self, nic: str) -> TailStats | None:
        """Service-time tails for one NIC, or None before any span."""
        return self._stats(self._registry.get(RAIL_METRIC, {"nic": nic}))

    def message(self, node: str) -> TailStats | None:
        """Message-latency tails for one node, or None."""
        return self._stats(self._registry.get(MESSAGE_METRIC, {"node": node}))

    def _family(self, name: str, key: Callable[[Mapping[str, str]], str]) -> dict[str, TailStats]:
        out: dict[str, TailStats] = {}
        for sketch in self._registry.sketches():
            if sketch.name != name:
                continue
            stats = self._stats(sketch)
            if stats is not None:
                out[key(dict(sketch.labels))] = stats
        return out

    def edges(self) -> dict[str, TailStats]:
        """All edges, keyed ``"src->dst"``."""
        return self._family(
            EDGE_METRIC, lambda l: f"{l.get('src', '?')}->{l.get('dst', '?')}"
        )

    def rails(self) -> dict[str, TailStats]:
        """All rails, keyed by NIC name."""
        return self._family(RAIL_METRIC, lambda l: l.get("nic", "?"))

    def messages(self) -> dict[str, TailStats]:
        """Message latency per node."""
        return self._family(MESSAGE_METRIC, lambda l: l.get("node", "?"))

    # ------------------------------------------------------------------
    # scheduler-facing hint
    # ------------------------------------------------------------------
    def hint(self, src: str, dst: str, nic: str) -> dict[str, float] | None:
        """Compact per-decision tail context, or None before any data.

        This is what rides ``optimizer.decide`` records as
        ``tail_hint`` — logged, not acted on, in this PR.
        """
        edge = self.edge(src, dst)
        rail = self.rail(nic)
        if edge is None and rail is None:
            return None
        hint: dict[str, float] = {}
        if edge is not None:
            hint["edge_p99_us"] = edge.p99_us
            hint["edge_p999_us"] = edge.p999_us
            hint["edge_n"] = edge.count
        if rail is not None:
            hint["rail_p99_us"] = rail.p99_us
            hint["rail_n"] = rail.count
        return hint

    # ------------------------------------------------------------------
    # full dump (the /tails payload)
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able view of every tail family plus SLO burn rates."""
        payload: dict[str, Any] = {
            "edges": {k: v.to_dict() for k, v in sorted(self.edges().items())},
            "rails": {k: v.to_dict() for k, v in sorted(self.rails().items())},
            "messages": {
                k: v.to_dict() for k, v in sorted(self.messages().items())
            },
        }
        if self.objectives:
            payload["slo"] = [
                status.to_dict()
                for status in evaluate_slo(self._registry, self.objectives)
            ]
        return payload


def pooled_message_sketch(registry: MetricsRegistry) -> QuantileSketch | None:
    """Every node's message-latency sketch merged into one, or None.

    This is what feeds the report's ``latency_p99_us``/``latency_p999_us``
    columns: one cluster-wide distribution, built by sketch merge rather
    than raw-sample pooling, so it works identically on a sim plane and
    on the coordinator's aggregated live registries.
    """
    pooled: QuantileSketch | None = None
    for sketch in registry.sketches():
        if sketch.name != MESSAGE_METRIC or not sketch.count:
            continue
        if pooled is None:
            pooled = QuantileSketch(MESSAGE_METRIC, k=sketch.k)
        pooled.merge(sketch)
    return pooled


# ----------------------------------------------------------------------
# SLO objectives and burn rates
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class SLObjective:
    """One latency objective: ``target`` of crossings on edges matching
    ``edge`` complete within ``threshold_us`` microseconds."""

    name: str
    edge: str  #: fnmatch glob over ``"src->dst"`` edge names
    threshold_us: float
    target: float = 0.999
    windows: tuple[float, ...] = (1.0, 10.0)  #: seconds, trace-relative

    @property
    def budget(self) -> float:
        """Error budget: the tolerated violating fraction."""
        return 1.0 - self.target


_SLO_KEYS = {"name", "edge", "threshold_us", "target", "windows"}


def parse_slo(spec: object) -> tuple[SLObjective, ...]:
    """Parse the scenario ``observability.slo`` block.

    The block is a list of objective objects::

        "slo": [{"name": "edge-fast", "edge": "*", "threshold_us": 5000,
                 "target": 0.99, "windows": [1.0, 10.0]}]
    """
    if spec is None:
        return ()
    if not isinstance(spec, (list, tuple)):
        raise ConfigurationError(
            f"observability.slo must be a list of objectives, got {type(spec).__name__}"
        )
    objectives: list[SLObjective] = []
    for i, entry in enumerate(spec):
        if not isinstance(entry, Mapping):
            raise ConfigurationError(f"observability.slo[{i}] must be an object")
        unknown = set(entry) - _SLO_KEYS
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) in observability.slo[{i}]: {sorted(unknown)}"
            )
        if "threshold_us" not in entry:
            raise ConfigurationError(
                f"observability.slo[{i}] needs a threshold_us"
            )
        threshold = float(entry["threshold_us"])
        if threshold <= 0:
            raise ConfigurationError(
                f"observability.slo[{i}].threshold_us must be > 0, got {threshold}"
            )
        target = float(entry.get("target", 0.999))
        if not 0.0 < target < 1.0:
            raise ConfigurationError(
                f"observability.slo[{i}].target must be in (0, 1), got {target}"
            )
        windows = tuple(float(w) for w in entry.get("windows", (1.0, 10.0)))
        if not windows or any(w <= 0 for w in windows):
            raise ConfigurationError(
                f"observability.slo[{i}].windows must be positive durations"
            )
        objectives.append(
            SLObjective(
                name=str(entry.get("name", f"slo{i}")),
                edge=str(entry.get("edge", "*")),
                threshold_us=threshold,
                target=target,
                windows=windows,
            )
        )
    return tuple(objectives)


@dataclass(slots=True)
class SLOStatus:
    """Burn-rate verdict for one objective on one edge."""

    objective: str
    edge: str
    threshold_us: float
    target: float
    #: window label ("cumulative" online, "10s" offline) -> burn rate.
    burn: dict[str, float] = field(default_factory=dict)
    samples: int = 0
    violated: bool = False

    @property
    def worst_burn(self) -> float:
        return max(self.burn.values()) if self.burn else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-able copy (the ``/tails`` payload's ``slo`` entries)."""
        return {
            "objective": self.objective,
            "edge": self.edge,
            "threshold_us": self.threshold_us,
            "target": self.target,
            "burn": dict(self.burn),
            "samples": self.samples,
            "violated": self.violated,
        }


def evaluate_slo(
    registry: MetricsRegistry, objectives: Iterable[SLObjective]
) -> list[SLOStatus]:
    """Online (cumulative) burn rates from the edge sketches.

    Sketches cannot window by time, so the online view has a single
    run-so-far window; burn ``>= 1`` means the edge is out of budget
    over the whole run.  The exact multi-window verdict comes from
    :func:`evaluate_slo_offline` on the trace.
    """
    edges = [s for s in registry.sketches() if s.name == EDGE_METRIC]
    statuses: list[SLOStatus] = []
    for objective in objectives:
        for sketch in edges:
            labels = dict(sketch.labels)
            edge_name = f"{labels.get('src', '?')}->{labels.get('dst', '?')}"
            if not fnmatchcase(edge_name, objective.edge):
                continue
            burn = sketch.fraction_above(objective.threshold_us) / objective.budget
            statuses.append(
                SLOStatus(
                    objective=objective.name,
                    edge=edge_name,
                    threshold_us=objective.threshold_us,
                    target=objective.target,
                    burn={"cumulative": burn},
                    samples=sketch.count,
                    violated=burn >= 1.0,
                )
            )
    return statuses


def evaluate_slo_offline(
    edges: Mapping[str, Any],
    objectives: Iterable[SLObjective],
    *,
    t_end: float,
) -> list[SLOStatus]:
    """Exact multi-window burn rates from timestamped trace crossings.

    ``edges`` maps edge names to objects with parallel ``times`` /
    ``latencies`` lists (seconds) — :class:`repro.obs.analyze._EdgeStats`.
    A violation requires **every** window to burn its budget, the
    standard multi-window rule: short windows alone alert on blips,
    long windows alone alert too late, both together mean the regression
    is current *and* sustained.
    """
    statuses: list[SLOStatus] = []
    for objective in objectives:
        threshold_s = objective.threshold_us / 1e6
        for edge_name in sorted(edges):
            if not fnmatchcase(edge_name, objective.edge):
                continue
            stats = edges[edge_name]
            status = SLOStatus(
                objective=objective.name,
                edge=edge_name,
                threshold_us=objective.threshold_us,
                target=objective.target,
                samples=len(stats.latencies),
            )
            burns: list[float] = []
            for window in objective.windows:
                start = t_end - window
                in_window = [
                    latency
                    for t, latency in zip(stats.times, stats.latencies)
                    if t >= start
                ]
                if in_window:
                    fraction = sum(
                        1 for latency in in_window if latency > threshold_s
                    ) / len(in_window)
                    burn = fraction / objective.budget
                else:
                    burn = 0.0
                status.burn[f"{window:g}s"] = burn
                burns.append(burn)
            status.violated = bool(burns) and all(b >= 1.0 for b in burns)
            statuses.append(status)
    return statuses


# ----------------------------------------------------------------------
# ``python -m repro obs tail``
# ----------------------------------------------------------------------
def render_tail_report(
    analysis, statuses: list[SLOStatus] | None = None
) -> str:
    """ASCII tail report from an offline :class:`TraceAnalysis`."""
    from repro.util.units import format_time

    lines: list[str] = []
    if not analysis.edges:
        lines.append(
            "no correlated wire crossings in this trace "
            "(needs live.recv records from a merged live trace, or a "
            "traced sim run)"
        )
    else:
        lines.append("per-edge one-way latency (exact, from trace samples):")
        name_width = max(len(e) for e in analysis.edges)
        for edge_name in sorted(analysis.edges):
            edge = analysis.edges[edge_name]
            lines.append(
                f"  {edge_name:<{name_width}}  n={edge.count:<6} "
                f"p50 {format_time(edge.percentile(0.50))}  "
                f"p90 {format_time(edge.percentile(0.90))}  "
                f"p99 {format_time(edge.percentile(0.99))}  "
                f"p999 {format_time(edge.percentile(0.999))}  "
                f"max {format_time(edge.percentile(1.0))}"
            )
    if statuses is not None:
        lines.append("")
        if not statuses:
            lines.append("SLO: no objectives matched any edge")
        else:
            lines.append("SLO burn rates (burn >= 1 in every window = violation):")
            for status in statuses:
                windows = "  ".join(
                    f"{label}={burn:.2f}" for label, burn in status.burn.items()
                )
                verdict = "VIOLATED" if status.violated else "ok"
                lines.append(
                    f"  [{verdict:^8}] {status.objective}: {status.edge} "
                    f"<= {status.threshold_us:g}us @ {status.target:g} "
                    f"(n={status.samples})  burn {windows}"
                )
    return "\n".join(lines)


def main(args) -> int:
    """Entry point for ``python -m repro obs tail``."""
    import json
    from pathlib import Path

    from repro.obs.analyze import analyze_file

    analysis = analyze_file(Path(args.trace))
    statuses: list[SLOStatus] | None = None
    if getattr(args, "scenario", None):
        spec = json.loads(Path(args.scenario).read_text())
        objectives = parse_slo(spec.get("observability", {}).get("slo"))
        statuses = evaluate_slo_offline(
            analysis.edges, objectives, t_end=analysis.span[1]
        )
    try:
        print(f"== tail report: {args.trace} ==")
        print(render_tail_report(analysis, statuses))
    except BrokenPipeError:
        return 0
    if getattr(args, "check", False):
        if not analysis.edges:
            print("FAIL: --check requires at least one correlated edge")
            return 1
        violated = [s for s in statuses or [] if s.violated]
        if violated:
            print(f"FAIL: {len(violated)} SLO violation(s)")
            return 1
    return 0
