"""Per-message lifecycle span reconstruction from trace events.

A traced message leaves a trail across layers: ``collect.enqueue`` when
the engine accepts it, ``engine.dispatch`` when fragments are packed
into a wire packet, ``nic.send`` when that packet starts occupying a
rail, ``rel.retransmit``/``reorder.enter``/``reorder.release`` when the
reliability layer intervenes, ``rx.deliver`` on arrival and
``message.complete`` when the reassembler hands the payload up.  This
module stitches those events back into one :class:`MessageChain` per
message: the set of packet :class:`Leg`\\ s that carried its bytes, plus
the sender-side context (hold-timer windows, rendezvous handshakes)
needed to explain time spent *before* the wire.

Correlation keys
----------------
* A packet leg is keyed ``"{sender}#{packet_id}"`` — exactly the wire
  correlation id the live plane stamps into frames
  (:func:`repro.network.wire.correlation_id`), so sim traces (one
  process, shared packet ids) and merged live traces (corr echoed in
  ``live.recv``/``rx.deliver``) resolve identically.
* A message chain is keyed ``(sender, message_id)``.  On a live
  receiver the mirror message carries a peer-local id, so delivery is
  joined through the leg instead: ``engine.dispatch`` records which
  (message, fragment, length) slices each packet carries, and a chain
  completes when its delivered bytes cover its size.

The collector is single-pass and bounded (FIFO eviction beyond
``_PENDING_CAP`` in-flight chains/legs), so it doubles as a live tracer
sink — that is what lets :class:`repro.obs.causal.TailExemplars` keep
full span chains for the slowest messages even after the ring buffer
evicted the raw events.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.util.tracing import TraceEvent

__all__ = [
    "Leg",
    "MessageChain",
    "SpanCollector",
    "merge_intervals",
    "interval_overlap",
    "subtract_intervals",
]

#: Bound on in-flight (not yet completed) chains and legs; beyond it the
#: oldest is evicted FIFO so a runaway trace cannot grow memory.
_PENDING_CAP = 65536


@dataclass(slots=True)
class Leg:
    """One wire packet's journey from dispatch to delivery."""

    key: str  #: ``"{sender}#{packet_id}"`` — the wire correlation id.
    node: str  #: sender node.
    packet_id: int | None = None
    dst: str | None = None
    nic: str | None = None
    packet_kind: str | None = None
    bytes: int = 0
    dispatch_t: float | None = None
    send_t: float | None = None
    occupancy: float | None = None
    recv_t: float | None = None  #: live.recv (wire arrival, live only)
    reorder_enter_t: float | None = None
    reorder_release_t: float | None = None
    deliver_t: float | None = None
    retransmits: list[float] = field(default_factory=list)
    drops: int = 0
    #: ``(message_id, fragment_id, length)`` slices this packet carries.
    slices: list[tuple[int, int, int]] = field(default_factory=list)

    @property
    def arrival_t(self) -> float | None:
        """Physical wire arrival: reorder entry, live.recv, or delivery."""
        if self.reorder_enter_t is not None:
            return self.reorder_enter_t
        if self.recv_t is not None:
            return self.recv_t
        return self.deliver_t

    @property
    def done_t(self) -> float | None:
        """When this leg's payload became available to the reassembler."""
        if self.deliver_t is not None:
            return self.deliver_t
        if self.reorder_release_t is not None:
            return self.reorder_release_t
        return self.recv_t


@dataclass(slots=True)
class MessageChain:
    """Everything one traced message did, submit to completion."""

    src: str
    message_id: int
    flow: str | None = None
    dst: str | None = None
    bytes: int = 0
    fragments: int = 0
    submit_t: float = 0.0
    complete_t: float | None = None
    delivered_bytes: int = 0
    last_deliver_t: float | None = None
    legs: list[Leg] = field(default_factory=list)
    #: Rendezvous handshake windows ``(park_t, ready_t | None)``.
    rdv_windows: list[tuple[float, float | None]] = field(default_factory=list)

    @property
    def key(self) -> str:
        return f"{self.src}#m{self.message_id}"

    @property
    def covered(self) -> bool:
        """All payload bytes have a delivery timestamp."""
        return self.bytes > 0 and self.delivered_bytes >= self.bytes


# ----------------------------------------------------------------------
# interval helpers (blame partitioning of the queue span)
# ----------------------------------------------------------------------
def merge_intervals(
    intervals: Iterable[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Union of possibly-overlapping intervals, sorted and disjoint."""
    out: list[tuple[float, float]] = []
    for start, end in sorted(i for i in intervals if i[1] > i[0]):
        if out and start <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((start, end))
    return out


def interval_overlap(
    intervals: Iterable[tuple[float, float]], lo: float, hi: float
) -> list[tuple[float, float]]:
    """Clip intervals to ``[lo, hi]`` (drops empty results)."""
    return [
        (max(start, lo), min(end, hi))
        for start, end in intervals
        if min(end, hi) > max(start, lo)
    ]


def subtract_intervals(
    intervals: list[tuple[float, float]], holes: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """``intervals`` minus ``holes`` (both disjoint and sorted)."""
    out: list[tuple[float, float]] = []
    for start, end in intervals:
        cursor = start
        for h_start, h_end in holes:
            if h_end <= cursor or h_start >= end:
                continue
            if h_start > cursor:
                out.append((cursor, h_start))
            cursor = max(cursor, h_end)
            if cursor >= end:
                break
        if cursor < end:
            out.append((cursor, end))
    return out


def total_length(intervals: Iterable[tuple[float, float]]) -> float:
    """Summed length of the intervals (assumed disjoint)."""
    return sum(end - start for start, end in intervals)


# ----------------------------------------------------------------------
# the collector
# ----------------------------------------------------------------------
class SpanCollector:
    """Single-pass, bounded reconstruction of message span chains.

    Feed it trace events (any order within a source's own stream; the
    merged live stream qualifies) via :meth:`ingest` or use it directly
    as a tracer sink.  Completed chains accumulate in
    :attr:`completed`; :meth:`drain_completed` hands them off
    incrementally, :meth:`finish` closes out chains whose delivery is
    fully covered but whose ``message.complete`` never joined (live
    mirror messages).
    """

    __slots__ = (
        "chains",
        "legs",
        "completed",
        "hold_windows",
        "events_seen",
        "trace_seen",
        "trace_dropped",
        "evicted_chains",
        "_open_hold",
        "_flow_order",
    )

    def __init__(self) -> None:
        self.chains: dict[tuple[str, int], MessageChain] = {}
        self.legs: dict[str, Leg] = {}
        self.completed: list[MessageChain] = []
        #: node -> list of (arm_t, fire_t | None) hold-timer windows.
        self.hold_windows: dict[str, list[tuple[float, float | None]]] = {}
        self.events_seen = 0
        #: From an ``obs.truncated`` marker, when the trace carried one.
        self.trace_seen: int | None = None
        self.trace_dropped = 0
        self.evicted_chains = 0
        self._open_hold: dict[str, int] = {}  # node -> index into windows
        #: flow name -> chain keys in submit order (live completion join).
        self._flow_order: dict[str, list[tuple[str, int]]] = {}

    # -- sink protocol -------------------------------------------------
    def __call__(self, event: TraceEvent) -> None:
        self.ingest(event)

    def ingest(self, event: TraceEvent) -> None:
        """Feed one trace event; unknown kinds are ignored."""
        self.events_seen += 1
        handler = self._HANDLERS.get(event.kind)
        if handler is not None:
            handler(self, event)

    def ingest_all(self, events: Iterable[TraceEvent]) -> None:
        """Feed an entire event stream in order."""
        for event in events:
            self.ingest(event)

    # -- event handlers ------------------------------------------------
    @staticmethod
    def _source_name(event: TraceEvent) -> str:
        return event.source.partition(":")[2]

    def _on_enqueue(self, event: TraceEvent) -> None:
        node = self._source_name(event)
        detail = event.detail
        chain = MessageChain(
            src=node,
            message_id=int(detail["message"]),
            flow=detail.get("flow"),
            dst=detail.get("dst"),
            bytes=int(detail.get("bytes", 0)),
            fragments=int(detail.get("fragments", 0)),
            submit_t=event.time,
        )
        key = (node, chain.message_id)
        if len(self.chains) >= _PENDING_CAP:
            evicted = self.chains.pop(next(iter(self.chains)))
            self.evicted_chains += 1
            self._forget_flow_entry(evicted)
        self.chains[key] = chain
        if chain.flow is not None:
            self._flow_order.setdefault(chain.flow, []).append(key)

    def _forget_flow_entry(self, chain: MessageChain) -> None:
        if chain.flow is None:
            return
        order = self._flow_order.get(chain.flow)
        if order is not None:
            try:
                order.remove((chain.src, chain.message_id))
            except ValueError:
                pass

    def _on_hold_arm(self, event: TraceEvent) -> None:
        node = self._source_name(event)
        windows = self.hold_windows.setdefault(node, [])
        if node not in self._open_hold:
            self._open_hold[node] = len(windows)
            windows.append((event.time, None))

    def _on_hold_fire(self, event: TraceEvent) -> None:
        node = self._source_name(event)
        index = self._open_hold.pop(node, None)
        if index is not None:
            arm_t, _ = self.hold_windows[node][index]
            self.hold_windows[node][index] = (arm_t, event.time)

    def _chain_for_message(self, node: str, detail: dict) -> MessageChain | None:
        message = detail.get("message")
        if message is None:
            return None
        return self.chains.get((node, int(message)))

    def _on_rdv_park(self, event: TraceEvent) -> None:
        chain = self._chain_for_message(self._source_name(event), event.detail)
        if chain is not None:
            chain.rdv_windows.append((event.time, None))

    def _on_rdv_close(self, event: TraceEvent) -> None:
        chain = self._chain_for_message(self._source_name(event), event.detail)
        if chain is not None and chain.rdv_windows:
            for i in range(len(chain.rdv_windows) - 1, -1, -1):
                start, end = chain.rdv_windows[i]
                if end is None:
                    chain.rdv_windows[i] = (start, event.time)
                    break

    def _leg(self, key: str, node: str) -> Leg:
        leg = self.legs.get(key)
        if leg is None:
            if len(self.legs) >= _PENDING_CAP:
                self.legs.pop(next(iter(self.legs)))
            leg = Leg(key=key, node=node)
            self.legs[key] = leg
        return leg

    def _on_dispatch(self, event: TraceEvent) -> None:
        detail = event.detail
        packet = detail.get("packet")
        if packet is None:  # trace predates packet correlation
            return
        node = self._source_name(event)
        leg = self._leg(f"{node}#{packet}", node)
        leg.packet_id = int(packet)
        leg.dispatch_t = event.time
        leg.dst = detail.get("dst")
        leg.packet_kind = detail.get("packet_kind")
        leg.bytes = int(detail.get("bytes", 0))
        for mid, fid, length in detail.get("messages", ()):
            leg.slices.append((int(mid), int(fid), int(length)))
            chain = self.chains.get((node, int(mid)))
            if chain is not None and leg not in chain.legs:
                chain.legs.append(leg)

    def _on_nic_send(self, event: TraceEvent) -> None:
        detail = event.detail
        nic = self._source_name(event)
        node = nic.split(".", 1)[0]
        key = detail.get("corr") or f"{node}#{detail['packet']}"
        leg = self._leg(key, node)
        if leg.send_t is None:
            leg.send_t = event.time
        leg.nic = nic
        occupancy = detail.get("occupancy")
        if occupancy is not None:
            leg.occupancy = float(occupancy)

    def _rel_leg(self, event: TraceEvent) -> Leg:
        nic = self._source_name(event)
        node = nic.split(".", 1)[0]
        return self._leg(f"{node}#{event.detail['packet']}", node)

    def _on_retransmit(self, event: TraceEvent) -> None:
        self._rel_leg(event).retransmits.append(event.time)

    def _on_drop(self, event: TraceEvent) -> None:
        self._rel_leg(event).drops += 1

    def _on_reorder_enter(self, event: TraceEvent) -> None:
        detail = event.detail
        src = detail.get("src")
        if src is None:
            return
        leg = self._leg(f"{src}#{detail['packet']}", str(src))
        leg.reorder_enter_t = event.time

    def _on_reorder_release(self, event: TraceEvent) -> None:
        detail = event.detail
        src = detail.get("src")
        if src is None:
            return
        leg = self._leg(f"{src}#{detail['packet']}", str(src))
        leg.reorder_release_t = event.time

    def _on_live_recv(self, event: TraceEvent) -> None:
        detail = event.detail
        corr = detail.get("corr")
        if corr is None:
            return
        src = detail.get("src", str(corr).partition("#")[0])
        leg = self._leg(str(corr), str(src))
        if leg.recv_t is None:
            leg.recv_t = event.time

    def _on_deliver(self, event: TraceEvent) -> None:
        detail = event.detail
        key = detail.get("corr")
        if key is None:
            src = detail.get("src")
            if src is None or "packet" not in detail:
                return
            key = f"{src}#{detail['packet']}"
        leg = self.legs.get(str(key))
        if leg is None or leg.deliver_t is not None:
            return
        leg.deliver_t = event.time
        for mid, _fid, length in leg.slices:
            chain = self.chains.get((leg.node, mid))
            if chain is None or chain.complete_t is not None:
                continue
            chain.delivered_bytes += length
            chain.last_deliver_t = event.time

    def _on_complete(self, event: TraceEvent) -> None:
        detail = event.detail
        src = detail.get("src")
        chain = None
        if src is not None:
            chain = self.chains.get((str(src), int(detail["message"])))
        if chain is None:
            # Live mirror message: peer-local id never matches the
            # sender's.  Per-flow delivery is in order, so the oldest
            # fully-covered chain of the same flow is the one completing.
            flow = detail.get("flow")
            for key in self._flow_order.get(flow, ()):
                candidate = self.chains.get(key)
                if candidate is not None and candidate.covered:
                    chain = candidate
                    break
        if chain is None:
            return
        chain.complete_t = event.time
        self._finalize(chain)

    def _on_truncated(self, event: TraceEvent) -> None:
        detail = event.detail
        self.trace_dropped += int(detail.get("dropped", 0))
        seen = detail.get("seen")
        if seen is not None:
            self.trace_seen = (self.trace_seen or 0) + int(seen)

    def _finalize(self, chain: MessageChain) -> None:
        self.chains.pop((chain.src, chain.message_id), None)
        self._forget_flow_entry(chain)
        self.completed.append(chain)

    _HANDLERS = {
        "collect.enqueue": _on_enqueue,
        "hold.arm": _on_hold_arm,
        "hold.fire": _on_hold_fire,
        "rdv.park": _on_rdv_park,
        "rdv.ready": _on_rdv_close,
        "rdv.timeout": _on_rdv_close,
        "engine.dispatch": _on_dispatch,
        "nic.send": _on_nic_send,
        "rel.retransmit": _on_retransmit,
        "rel.drop": _on_drop,
        "reorder.enter": _on_reorder_enter,
        "reorder.release": _on_reorder_release,
        "live.recv": _on_live_recv,
        "rx.deliver": _on_deliver,
        "message.complete": _on_complete,
        "obs.truncated": _on_truncated,
    }

    # -- completion ----------------------------------------------------
    def drain_completed(self) -> Iterator[MessageChain]:
        """Yield and forget chains completed since the last drain."""
        done, self.completed = self.completed, []
        yield from done

    def finish(self) -> None:
        """Close out chains delivered in full but missing a completion
        event (live mirror messages whose ``message.complete`` could not
        be joined); incomplete chains stay in :attr:`chains`."""
        for key in [k for k, c in self.chains.items() if c.covered]:
            chain = self.chains[key]
            chain.complete_t = chain.last_deliver_t
            self._finalize(chain)

    @property
    def incomplete(self) -> int:
        """Chains still missing delivery evidence."""
        return len(self.chains)
