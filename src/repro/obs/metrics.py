"""Time-series metrics primitives: counters, gauges, log-bucketed histograms.

A :class:`MetricsRegistry` is the observability plane's numeric store.
It deliberately mirrors the Prometheus data model — counters only go up,
gauges go anywhere, histograms keep cumulative bucket counts — so
:meth:`MetricsRegistry.to_prometheus` can render the standard text
exposition format without translation.

Metrics are identified by ``(name, labels)``.  Labels are ordinary
dicts at the call site and frozen into a sorted tuple internally, so
``registry.gauge("repro_queue_depth", labels={"node": "n0"})`` returns
the same instrument every time.

Histograms are **log-bucketed**: bucket upper bounds grow geometrically
(default ×2) from ``base``, which keeps tail resolution over the many
orders of magnitude queue depths and wait times span without
hand-tuning bucket lists per metric.
"""

from __future__ import annotations

import re
from typing import Any, Iterable, Mapping

from repro.obs.sketch import DEFAULT_K, SUMMARY_QUANTILES, QuantileSketch
from repro.util.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "QuantileSketch", "MetricsRegistry"]

#: Frozen label form: sorted (key, value) pairs.
LabelKey = tuple[tuple[str, str], ...]

#: Exposition-format grammar for metric and label names.
_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _freeze_labels(labels: Mapping[str, object] | None) -> LabelKey:
    if not labels:
        return ()
    frozen = tuple(sorted((str(k), str(v)) for k, v in labels.items()))
    for key, _ in frozen:
        if not _LABEL_NAME_RE.match(key):
            raise ConfigurationError(
                f"label name {key!r} violates the exposition grammar "
                "([a-zA-Z_][a-zA-Z0-9_]*)"
            )
    return frozen


def _escape_label_value(value: str) -> str:
    """Exposition-format label-value escaping: backslash, quote, newline."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help(text: str) -> str:
    """HELP text escaping: backslash and newline only (quotes stay)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _format_labels(labels: LabelKey, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + body + "}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def set_total(self, value: float) -> None:
        """Overwrite with a cumulative total from an external source.

        For mirroring counters maintained elsewhere (engine/NIC stats)
        into the registry at snapshot time.  Going backwards is the same
        bug :meth:`inc` guards against.
        """
        if value < self.value:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease ({self.value} -> {value})"
            )
        self.value = value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` to the current value."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` from the current value."""
        self.value -= amount


class Histogram:
    """Log-bucketed distribution with cumulative Prometheus semantics.

    Bucket *i* holds observations ``<= base * growth**i``; one final
    implicit ``+Inf`` bucket catches the rest.  ``n_buckets`` finite
    buckets therefore span ``base`` … ``base * growth**(n_buckets-1)``.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "inf_count", "total", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        *,
        base: float = 1.0,
        growth: float = 2.0,
        n_buckets: int = 16,
    ) -> None:
        if base <= 0:
            raise ConfigurationError(f"histogram base must be > 0, got {base}")
        if growth <= 1.0:
            raise ConfigurationError(f"histogram growth must be > 1, got {growth}")
        if n_buckets < 1:
            raise ConfigurationError(f"histogram needs >= 1 bucket, got {n_buckets}")
        self.name = name
        self.labels = labels
        self.bounds: tuple[float, ...] = tuple(
            base * growth**i for i in range(n_buckets)
        )
        self.counts = [0] * n_buckets
        self.inf_count = 0
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        bounds = self.bounds
        if value > bounds[-1]:
            self.inf_count += 1
            return
        # Geometric bounds: binary search beats a linear walk only past
        # ~30 buckets; defaults sit well under that, so walk.
        for i, bound in enumerate(bounds):
            if value <= bound:
                self.counts[i] += 1
                return

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ending at +Inf."""
        out = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), running + self.inf_count))
        return out

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the bucket counts.

        Finds the bucket containing rank ``q * count`` and linearly
        interpolates within it, so the estimate is exact to within one
        bucket's width — with geometric bounds, a *relative* error of at
        most ``growth - 1``.  The +Inf bucket has no upper bound, so
        ranks landing there return the last finite bound (a documented
        underestimate; use a sketch when the tail matters).
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        running = 0
        lower = 0.0
        for bound, n in zip(self.bounds, self.counts):
            if n and running + n >= target:
                fraction = (target - running) / n
                return lower + fraction * (bound - lower)
            running += n
            lower = bound
        return self.bounds[-1]

    @classmethod
    def _restore(
        cls,
        name: str,
        labels: LabelKey,
        bounds: tuple[float, ...],
        counts: list[int],
        inf_count: int,
        total: float,
        count: int,
    ) -> "Histogram":
        """Rebuild a histogram from snapshot state, bypassing bucket setup."""
        if len(bounds) != len(counts) or not bounds:
            raise ConfigurationError(
                f"histogram snapshot for {name!r} has {len(bounds)} bounds "
                f"but {len(counts)} counts"
            )
        hist = object.__new__(cls)
        hist.name = name
        hist.labels = labels
        hist.bounds = tuple(float(b) for b in bounds)
        hist.counts = [int(c) for c in counts]
        hist.inf_count = int(inf_count)
        hist.total = float(total)
        hist.count = int(count)
        return hist


class MetricsRegistry:
    """Named instruments plus the Prometheus text renderer.

    ``counter``/``gauge``/``histogram``/``sketch`` are get-or-create:
    the first call fixes the instrument's type and (for histograms)
    bucketing; re-requesting the same name with a different type is an
    error — two components silently writing different shapes to one
    name would corrupt the export.
    """

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._metrics: dict[
            tuple[str, LabelKey], Counter | Gauge | Histogram | QuantileSketch
        ] = {}
        self._help: dict[str, str] = {}
        self._kinds: dict[str, str] = {}

    # ------------------------------------------------------------------
    # instrument access
    # ------------------------------------------------------------------
    def _get(
        self,
        factory,
        kind: str,
        name: str,
        labels: Mapping[str, object] | None,
        help: str,
        **kwargs,
    ):
        if not _METRIC_NAME_RE.match(name or ""):
            raise ConfigurationError(
                f"metric name {name!r} violates the exposition grammar "
                "([a-zA-Z_:][a-zA-Z0-9_:]*)"
            )
        known_kind = self._kinds.get(name)
        if known_kind is not None and known_kind != kind:
            raise ConfigurationError(
                f"metric {name!r} is a {known_kind}, not a {kind}"
            )
        key = (name, _freeze_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, key[1], **kwargs)
            self._metrics[key] = metric
            self._kinds[name] = kind
            if help and name not in self._help:
                self._help[name] = help
        return metric

    def counter(
        self, name: str, labels: Mapping[str, object] | None = None, help: str = ""
    ) -> Counter:
        """Get or create the counter at ``(name, labels)``."""
        return self._get(Counter, "counter", name, labels, help)

    def gauge(
        self, name: str, labels: Mapping[str, object] | None = None, help: str = ""
    ) -> Gauge:
        """Get or create the gauge at ``(name, labels)``."""
        return self._get(Gauge, "gauge", name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, object] | None = None,
        help: str = "",
        *,
        base: float = 1.0,
        growth: float = 2.0,
        n_buckets: int = 16,
    ) -> Histogram:
        """Get or create the histogram (bucketing fixed on first call)."""
        return self._get(
            Histogram,
            "histogram",
            name,
            labels,
            help,
            base=base,
            growth=growth,
            n_buckets=n_buckets,
        )

    def sketch(
        self,
        name: str,
        labels: Mapping[str, object] | None = None,
        help: str = "",
        *,
        k: int = DEFAULT_K,
    ) -> QuantileSketch:
        """Get or create the quantile sketch (``k`` fixed on first call)."""
        return self._get(QuantileSketch, "sketch", name, labels, help, k=k)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def __iter__(self) -> "Iterable[Counter | Gauge | Histogram | QuantileSketch]":
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(
        self, name: str, labels: Mapping[str, object] | None = None
    ) -> "Counter | Gauge | Histogram | QuantileSketch | None":
        """The instrument at ``(name, labels)``, or None."""
        return self._metrics.get((name, _freeze_labels(labels)))

    def sketches(self) -> "Iterable[QuantileSketch]":
        """All sketch instruments, in sorted ``(name, labels)`` order."""
        return [
            metric
            for (_, _), metric in sorted(self._metrics.items())
            if isinstance(metric, QuantileSketch)
        ]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Render the standard Prometheus text exposition format."""
        by_name: dict[str, list[Counter | Gauge | Histogram | QuantileSketch]] = {}
        for (name, _), metric in sorted(self._metrics.items()):
            by_name.setdefault(name, []).append(metric)
        lines: list[str] = []
        for name, metrics in by_name.items():
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {name} {_escape_help(help_text)}")
            # Sketches render as the Prometheus `summary` type: the
            # exposition format has no native sketch kind, and summary
            # (pre-computed quantiles + sum + count) is exactly the view
            # a scraper wants.
            exposed_kind = "summary" if self._kinds[name] == "sketch" else self._kinds[name]
            lines.append(f"# TYPE {name} {exposed_kind}")
            for metric in metrics:
                if isinstance(metric, Histogram):
                    for bound, cum in metric.cumulative():
                        le = "+Inf" if bound == float("inf") else _num(bound)
                        label_text = _format_labels(metric.labels, (("le", le),))
                        lines.append(f"{name}_bucket{label_text} {cum}")
                    label_text = _format_labels(metric.labels)
                    lines.append(f"{name}_sum{label_text} {_num(metric.total)}")
                    lines.append(f"{name}_count{label_text} {metric.count}")
                elif isinstance(metric, QuantileSketch):
                    for q in SUMMARY_QUANTILES:
                        label_text = _format_labels(
                            metric.labels, (("quantile", _num(q)),)
                        )
                        lines.append(f"{name}{label_text} {_num(metric.quantile(q))}")
                    label_text = _format_labels(metric.labels)
                    lines.append(f"{name}_sum{label_text} {_num(metric.total)}")
                    lines.append(f"{name}_count{label_text} {metric.count}")
                else:
                    label_text = _format_labels(metric.labels)
                    lines.append(f"{name}{label_text} {_num(metric.value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    # ------------------------------------------------------------------
    # snapshot (JSON-able full dump, for shipping across processes)
    # ------------------------------------------------------------------
    def to_snapshot(self) -> dict[str, Any]:
        """Serialize every instrument to a JSON-able dict.

        The inverse of :meth:`from_snapshot`.  This is how a live peer
        ships its registry to the coordinator over the JSON-lines
        control protocol (see :mod:`repro.obs.merge` for the cross-peer
        merge semantics).
        """
        metrics: list[dict[str, Any]] = []
        for (name, labels), metric in sorted(self._metrics.items()):
            entry: dict[str, Any] = {
                "name": name,
                "kind": metric.kind,
                "labels": [list(pair) for pair in labels],
                "help": self._help.get(name, ""),
            }
            if isinstance(metric, Histogram):
                entry.update(
                    bounds=list(metric.bounds),
                    counts=list(metric.counts),
                    inf_count=metric.inf_count,
                    total=metric.total,
                    count=metric.count,
                )
            elif isinstance(metric, QuantileSketch):
                entry.update(metric.state())
            else:
                entry["value"] = metric.value
            metrics.append(entry)
        return {"namespace": self.namespace, "metrics": metrics}

    @classmethod
    def from_snapshot(cls, payload: Mapping[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_snapshot` output."""
        registry = cls(namespace=str(payload.get("namespace", "repro")))
        for entry in payload.get("metrics", ()):
            registry._insert_snapshot_entry(entry)
        return registry

    def _insert_snapshot_entry(self, entry: Mapping[str, Any]) -> None:
        try:
            name = entry["name"]
            kind = entry["kind"]
            labels = _freeze_labels(dict((k, v) for k, v in entry["labels"]))
        except (KeyError, TypeError, ValueError) as bad:
            raise ConfigurationError(f"malformed metric snapshot entry: {bad}") from None
        known_kind = self._kinds.get(name)
        if known_kind is not None and known_kind != kind:
            raise ConfigurationError(f"metric {name!r} is a {known_kind}, not a {kind}")
        key = (name, labels)
        if key in self._metrics:
            raise ConfigurationError(
                f"duplicate snapshot series {name!r} {dict(labels)!r}"
            )
        metric: Counter | Gauge | Histogram | QuantileSketch
        if kind == "counter":
            metric = Counter(name, labels)
            metric.value = float(entry.get("value", 0.0))
        elif kind == "gauge":
            metric = Gauge(name, labels)
            metric.value = float(entry.get("value", 0.0))
        elif kind == "histogram":
            metric = Histogram._restore(
                name,
                labels,
                tuple(entry.get("bounds", ())),
                list(entry.get("counts", ())),
                int(entry.get("inf_count", 0)),
                float(entry.get("total", 0.0)),
                int(entry.get("count", 0)),
            )
        elif kind == "sketch":
            metric = QuantileSketch._restore(name, labels, entry)
        else:
            raise ConfigurationError(f"unknown metric kind {kind!r} in snapshot")
        self._metrics[key] = metric
        self._kinds[name] = kind
        help_text = entry.get("help")
        if help_text and name not in self._help:
            self._help[name] = str(help_text)


def _num(value: float) -> str:
    """Render a sample value (integers without the trailing ``.0``)."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)
