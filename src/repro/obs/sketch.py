"""Mergeable streaming quantile sketches (the fourth instrument kind).

A :class:`QuantileSketch` summarizes an unbounded stream of observations
in bounded memory while answering rank queries (p50/p90/p99/p999) with
bounded *rank* error.  It is the online complement to the exact offline
percentiles :mod:`repro.obs.analyze` computes from raw trace samples —
same question, answerable while the run is still in flight and
mergeable across peers without shipping raw samples.

The design is a KLL-style compactor stack, deterministic on purpose:

* Level ``i`` holds values of weight ``2**i`` in an unsorted buffer of
  capacity ``k``.  New observations enter level 0 with weight 1.
* When a level fills, it is sorted and **every other element** is
  promoted to the next level (doubling its weight); the survivors are
  discarded.  The starting parity alternates per level between
  compactions, so successive compactions under- and over-count in
  alternation and the errors largely cancel.
* A rank query flattens the stack into ``(value, weight)`` pairs and
  walks cumulative weights.

Unlike textbook KLL there is no randomness: given the same insertion
order the sketch state is bit-identical, which keeps traced runs
reproducible (the repo-wide determinism contract).  The price is a
worst-case rank error of ``O(log(n/k) / k)`` instead of KLL's
``O(1/k)`` — with the default ``k = 128`` that is well under 1% rank
error at any realistic stream size, and the documented envelope used by
the integration tests is :data:`rank_error_bound`.

Merging concatenates the stacks level-by-level and re-compacts overfull
levels, so ``merge(a, b)`` summarizes exactly the union of both streams
(weights are conserved); quantiles of a merge agree with quantiles of
the pooled stream within the same rank-error envelope, associatively
and commutatively — the property the hypothesis suite asserts.

Sketches also support a constant :meth:`shift`, which is what makes
coordinator-side clock-offset correction exact: a live peer records
one-way latencies against *raw* clocks, and since every sample on one
directed edge needs the same constant correction, shifting the finished
sketch equals having corrected every sample before insertion.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.util.errors import ConfigurationError

__all__ = ["QuantileSketch", "DEFAULT_K"]

#: Default compactor capacity.  Memory is ``O(k * log(n/k))`` floats;
#: 128 keeps a million-sample sketch under ~20 kB with sub-1% rank error.
DEFAULT_K = 128

#: Standard quantiles rendered in the Prometheus summary exposition.
SUMMARY_QUANTILES = (0.5, 0.9, 0.99, 0.999)


class QuantileSketch:
    """Deterministic KLL-style mergeable quantile sketch.

    Fits the registry instrument shape (``name``/``labels``/``kind``)
    so :class:`~repro.obs.metrics.MetricsRegistry` can treat it as a
    fourth kind alongside counter/gauge/histogram.
    """

    __slots__ = (
        "name",
        "labels",
        "k",
        "levels",
        "count",
        "total",
        "_min",
        "_max",
        "_parity",
        "_cache_count",
        "_cache",
    )

    kind = "sketch"

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        *,
        k: int = DEFAULT_K,
    ) -> None:
        if k < 8 or k % 2:
            raise ConfigurationError(f"sketch k must be an even int >= 8, got {k}")
        self.name = name
        self.labels = labels
        self.k = k
        #: ``levels[i]`` holds values of weight ``2**i`` (unsorted).
        self.levels: list[list[float]] = [[]]
        self.count = 0
        self.total = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        #: Per-level compaction parity (which half survives next time).
        self._parity: list[int] = [0]
        #: Quantile memo: valid while ``count`` is unchanged.
        self._cache_count = -1
        self._cache: dict[float, float] = {}

    # ------------------------------------------------------------------
    # ingest
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        level0 = self.levels[0]
        level0.append(value)
        if len(level0) >= self.k:
            self._compact_from(0)

    def _compact_from(self, start: int) -> None:
        """Cascade compactions upward from ``start`` until all fit."""
        i = start
        while i < len(self.levels) and len(self.levels[i]) >= self.k:
            buf = sorted(self.levels[i])
            offset = self._parity[i]
            self._parity[i] ^= 1
            self.levels[i] = []
            if i + 1 == len(self.levels):
                self.levels.append([])
                self._parity.append(0)
            self.levels[i + 1].extend(buf[offset::2])
            i += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def minimum(self) -> float:
        return self._min if self.count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self.count else 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def _weighted(self) -> list[tuple[float, int]]:
        """All retained ``(value, weight)`` pairs, sorted by value."""
        pairs: list[tuple[float, int]] = []
        for i, level in enumerate(self.levels):
            weight = 1 << i
            pairs.extend((v, weight) for v in level)
        pairs.sort(key=lambda p: p[0])
        return pairs

    def quantile(self, q: float) -> float:
        """Estimated value at rank ``q`` (0..1); exact at q=0 and q=1."""
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self._min
        if q == 1.0:
            return self._max
        if self._cache_count == self.count and q in self._cache:
            return self._cache[q]
        target = q * self.count
        running = 0
        result = self._max
        for value, weight in self._weighted():
            running += weight
            if running >= target:
                result = value
                break
        if self._cache_count != self.count:
            self._cache_count = self.count
            self._cache = {}
        self._cache[q] = result
        return result

    def quantiles(self, qs: Iterable[float]) -> list[float]:
        """Batch :meth:`quantile` (one flatten, many ranks)."""
        return [self.quantile(q) for q in qs]

    def fraction_above(self, threshold: float) -> float:
        """Estimated fraction of observations strictly above ``threshold``."""
        if self.count == 0:
            return 0.0
        above = 0
        for i, level in enumerate(self.levels):
            weight = 1 << i
            above += weight * sum(1 for v in level if v > threshold)
        retained = sum(len(level) << i for i, level in enumerate(self.levels))
        return above / retained if retained else 0.0

    def rank_error_bound(self) -> float:
        """Documented worst-case rank-error envelope for this sketch.

        Each compaction at level ``i`` shifts ranks by at most ``2**i``
        relative to a count that has reached ``k * 2**i``; alternating
        parity cancels most of it, but the bound sums one residual per
        level: ``len(levels) / k``, floored at ``1/k`` for tiny streams.
        """
        return max(len(self.levels), 1) / self.k

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold ``other``'s retained state into this sketch (in place).

        Requires equal ``k`` (same resolution contract as histogram
        bucket bounds).  Weights are conserved: the merged sketch
        summarizes the union of both raw streams.
        """
        if other.k != self.k:
            raise ConfigurationError(
                f"cannot merge sketch {other.name!r}: k differs "
                f"({self.k} vs {other.k})"
            )
        while len(self.levels) < len(other.levels):
            self.levels.append([])
            self._parity.append(0)
        for i, level in enumerate(other.levels):
            if level:
                self.levels[i].extend(level)
        for i in range(len(self.levels)):
            if len(self.levels[i]) >= self.k:
                self._compact_from(i)
        self.count += other.count
        self.total += other.total
        if other.count:
            self._min = min(self._min, other._min)
            self._max = max(self._max, other._max)
        self._cache_count = -1
        return self

    def shift(self, delta: float, *, floor: float | None = None) -> None:
        """Add a constant to every retained value (clock-offset correction).

        ``floor`` clamps shifted values (and min/max) from below — the
        same "never report a negative latency" rule event alignment
        applies, applied to the sketch instead of raw samples.
        """
        if self.count == 0 or delta == 0.0 and floor is None:
            return
        clamp = (lambda v: max(v + delta, floor)) if floor is not None else (
            lambda v: v + delta
        )
        self.total = 0.0
        for i, level in enumerate(self.levels):
            self.levels[i] = [clamp(v) for v in level]
            self.total += sum(self.levels[i]) * (1 << i)
        # Weighted total is now estimated from retained state; min/max
        # shift exactly.
        self._min = clamp(self._min)
        self._max = clamp(self._max)
        self._cache_count = -1

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def state(self) -> dict[str, Any]:
        """JSON-able internal state (the snapshot payload fields)."""
        return {
            "k": self.k,
            "levels": [list(level) for level in self.levels],
            "parity": list(self._parity),
            "count": self.count,
            "total": self.total,
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
        }

    @classmethod
    def _restore(
        cls,
        name: str,
        labels: tuple[tuple[str, str], ...],
        state: Mapping[str, Any],
    ) -> "QuantileSketch":
        """Rebuild a sketch from :meth:`state` output."""
        sketch = cls(name, labels, k=int(state.get("k", DEFAULT_K)))
        levels = [list(map(float, level)) for level in state.get("levels", [[]])]
        if not levels:
            levels = [[]]
        parity = [int(p) & 1 for p in state.get("parity", ())]
        if len(parity) != len(levels):
            parity = [0] * len(levels)
        for level in levels:
            if len(level) >= sketch.k:
                raise ConfigurationError(
                    f"sketch snapshot for {name!r} has an overfull level "
                    f"({len(level)} >= k={sketch.k})"
                )
        sketch.levels = levels
        sketch._parity = parity
        sketch.count = int(state.get("count", 0))
        sketch.total = float(state.get("total", 0.0))
        low = state.get("min")
        high = state.get("max")
        sketch._min = float(low) if low is not None else float("inf")
        sketch._max = float(high) if high is not None else float("-inf")
        return sketch
