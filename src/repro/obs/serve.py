"""Minimal HTTP exposure of a run's cluster-level metrics.

:class:`ObsHTTPServer` serves two read-only endpoints while a live run
is in flight:

* ``GET /metrics`` — the cluster :class:`~repro.obs.metrics.MetricsRegistry`
  rendered in Prometheus text exposition format (``text/plain; version=0.0.4``).
* ``GET /status`` — a JSON document with run progress (per-peer message
  counts, clock offsets, trace accounting) for humans and scripts.
* ``GET /peers`` — liveness: which peers are alive, which the watchdog
  has declared dead (and why), with time-to-detect per declaration.
* ``GET /tails`` — JSON tail-latency view: per-edge/per-rail
  p50/p90/p99/p999 from the merged quantile sketches plus SLO burn
  rates (see :mod:`repro.obs.tails`).
* ``GET /tuner`` — JSON online-adaptation view: per-peer regime,
  active specializations, hit/miss counters, sweep and rail-selection
  state (see :mod:`repro.tuner`).
* ``GET /why`` — JSON causal-attribution view: per-edge blame-bucket
  fractions and slowest-message exemplars computed over the events
  merged so far (see :mod:`repro.obs.causal`).

The server is deliberately tiny: a hand-rolled HTTP/1.0 responder on
``asyncio`` streams, no routing table, no keep-alive, no dependencies.
It runs its own event loop in a daemon thread so the coordinator — which
blocks in the synchronous control-protocol poll loop — never has to
yield to it; the data it serves comes from thread-safe callbacks that
snapshot coordinator state under a lock.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Callable, Mapping

from repro.util.errors import ConfigurationError

__all__ = ["ObsHTTPServer", "parse_serve_address"]

_PROM_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
_MAX_REQUEST_BYTES = 8192


def parse_serve_address(spec: str) -> tuple[str, int]:
    """Parse ``--serve`` specs: ``9464``, ``:9464``, ``host:9464``.

    A bare or empty host means 127.0.0.1 — observability endpoints
    should not bind wildcard unless explicitly asked to.
    """
    text = spec.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigurationError(f"invalid serve address {spec!r}") from None
    if not 0 < port < 65536:
        raise ConfigurationError(f"serve port out of range in {spec!r}")
    return (host or "127.0.0.1", port)


class ObsHTTPServer:
    """Background ``/metrics`` + ``/status`` HTTP server.

    Parameters
    ----------
    metrics_text:
        Zero-arg callable returning the current Prometheus exposition
        text.  Called from the server thread — must be thread-safe.
    status:
        Zero-arg callable returning a JSON-able dict for ``/status``.
    peers:
        Optional zero-arg callable returning a JSON-able dict for
        ``/peers`` (liveness view); without it the route 404s.
    tails:
        Optional zero-arg callable returning a JSON-able dict for
        ``/tails`` (tail-latency view); without it the route 404s.
    tuner:
        Optional zero-arg callable returning a JSON-able dict for
        ``/tuner`` (online-adaptation view); without it the route 404s.
    why:
        Optional zero-arg callable returning a JSON-able dict for
        ``/why`` (causal-attribution view); without it the route 404s.
    host, port:
        Bind address.  ``port=0`` picks a free port; read it back from
        :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        metrics_text: Callable[[], str],
        status: Callable[[], Mapping[str, Any]],
        peers: Callable[[], Mapping[str, Any]] | None = None,
        tails: Callable[[], Mapping[str, Any]] | None = None,
        tuner: Callable[[], Mapping[str, Any]] | None = None,
        why: Callable[[], Mapping[str, Any]] | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._metrics_text = metrics_text
        self._status = status
        self._peers = peers
        self._tails = tails
        self._tuner = tuner
        self._why = why
        self._host = host
        self._port = port
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self.requests_served = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        """The bound port (resolved after :meth:`start` when 0 was asked)."""
        return self._port

    @property
    def address(self) -> str:
        return f"http://{self._host}:{self._port}"

    def start(self) -> "ObsHTTPServer":
        """Bind and serve from a daemon thread; returns self.

        Raises the underlying OS error (e.g. address in use) in the
        calling thread rather than dying silently in the background.
        """
        if self._thread is not None:
            raise ConfigurationError("ObsHTTPServer already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-http", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=5.0)
        if self._startup_error is not None:
            self._thread.join(timeout=1.0)
            raise self._startup_error
        if not self._started.is_set():  # pragma: no cover - defensive
            raise ConfigurationError("observability HTTP server failed to start")
        return self

    def stop(self) -> None:
        """Shut the server down and join the thread (idempotent)."""
        loop = self._loop
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        try:
            try:
                server = loop.run_until_complete(
                    asyncio.start_server(self._handle, self._host, self._port)
                )
            except BaseException as exc:  # surface bind failures to start()
                self._startup_error = exc
                return
            self._server = server
            self._port = server.sockets[0].getsockname()[1]
            self._started.set()
            loop.run_forever()
            server.close()
            loop.run_until_complete(server.wait_closed())
            # Cancel handlers caught mid-request by stop() so the loop
            # closes without "task was destroyed" noise.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            self._started.set()
            loop.close()

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            if not request_line or len(request_line) > _MAX_REQUEST_BYTES:
                return
            # Drain headers; responses are Connection: close, so the
            # body (if any) can be ignored.
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=5.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1").split()
            method, path = (parts + ["", ""])[:2]
            status, content_type, body = self._respond(method, path)
            payload = (
                f"HTTP/1.0 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            ).encode("latin-1") + body
            # Count before the write: a client that reads the full
            # Content-Length body must observe its own request counted.
            self.requests_served += 1
            writer.write(payload)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - client went away
                pass

    def _respond(self, method: str, path: str) -> tuple[str, str, bytes]:
        if method not in ("GET", "HEAD"):
            return "405 Method Not Allowed", "text/plain", b"method not allowed\n"
        route = path.split("?", 1)[0]
        try:
            if route == "/metrics":
                return (
                    "200 OK",
                    _PROM_CONTENT_TYPE,
                    self._metrics_text().encode("utf-8"),
                )
            if route == "/status":
                body = json.dumps(dict(self._status()), indent=2, sort_keys=True)
                return "200 OK", "application/json", (body + "\n").encode("utf-8")
            if route == "/peers" and self._peers is not None:
                body = json.dumps(dict(self._peers()), indent=2, sort_keys=True)
                return "200 OK", "application/json", (body + "\n").encode("utf-8")
            if route == "/tails" and self._tails is not None:
                body = json.dumps(dict(self._tails()), indent=2, sort_keys=True)
                return "200 OK", "application/json", (body + "\n").encode("utf-8")
            if route == "/tuner" and self._tuner is not None:
                body = json.dumps(dict(self._tuner()), indent=2, sort_keys=True)
                return "200 OK", "application/json", (body + "\n").encode("utf-8")
            if route == "/why" and self._why is not None:
                body = json.dumps(dict(self._why()), indent=2, sort_keys=True)
                return "200 OK", "application/json", (body + "\n").encode("utf-8")
        except Exception as exc:  # callback failure must not kill the server
            return "500 Internal Server Error", "text/plain", f"{exc}\n".encode()
        return (
            "404 Not Found",
            "text/plain",
            b"not found; try /metrics, /status, /peers, /tails, /tuner or /why\n",
        )
