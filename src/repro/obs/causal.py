"""Causal latency attribution: why was this message late?

Built on :mod:`repro.obs.spans`, this module attributes every
microsecond of a message's end-to-end latency to a named blame bucket:

``hold``
    Waiting on the sender while the Nagle hold timer was armed — the
    scheduler *chose* to delay for aggregation.
``rdv``
    Parked in the rendezvous handshake (REQ sent, ACK not yet back).
``nic_queue``
    Queued at the sender for a busy/failed NIC (everything else between
    submit and first ``nic.send`` of the critical packet).
``service``
    The critical packet's own NIC occupancy (serialization/DMA).
``wire``
    Physical propagation: send to arrival, minus service and
    retransmit cycles.
``retransmit``
    Time burned in loss-recovery rounds (send to the *last*
    retransmission of the critical packet).
``reorder``
    Held in the receiver's reorder buffer behind a missing sequence.
``unattributed``
    The explicit residual: ``e2e - sum(everything above)``.  Always
    present, so bucket sums equal measured end-to-end latency *by
    construction* — a large residual means the trace is missing span
    boundaries, not that time silently vanished.

Critical-path rule: a message aggregated into several packets (or
striped over several rails) completes when its **slowest** leg delivers;
blame is attributed along that leg only — latencies do not add across
parallel legs.

Three surfaces:

* ``python -m repro obs why`` (:func:`main`) — per-message waterfalls
  plus a per-edge blame table from any trace file.
* :class:`TailExemplars` — a bounded reservoir keeping the full span
  chains of the slowest-K messages per edge, usable as a live tracer
  sink so exemplars survive :class:`~repro.obs.recorder.RingBufferSink`
  eviction; :meth:`TailExemplars.export` turns the accumulated blame
  into registry metrics (``repro_blame_seconds_total``,
  ``repro_blame_fraction``).
* :func:`attribute_events` — offline attribution for
  :mod:`repro.obs.analyze` summary metrics and the merged live trace.
"""

from __future__ import annotations

import json
import sys
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.obs.spans import (
    MessageChain,
    SpanCollector,
    interval_overlap,
    merge_intervals,
    subtract_intervals,
    total_length,
)
from repro.util.tracing import TraceEvent

__all__ = [
    "BLAME_BUCKETS",
    "MessageBlame",
    "CausalReport",
    "TailExemplars",
    "attribute_chain",
    "attribute_events",
    "export_blame",
    "render_waterfall",
    "render_report",
    "main",
]

BLAME_BUCKETS = (
    "hold",
    "rdv",
    "nic_queue",
    "service",
    "wire",
    "retransmit",
    "reorder",
    "unattributed",
)

BLAME_SECONDS_METRIC = "repro_blame_seconds_total"
BLAME_FRACTION_METRIC = "repro_blame_fraction"


@dataclass(slots=True)
class MessageBlame:
    """One message's end-to-end latency, fully attributed."""

    key: str
    flow: str | None
    src: str
    dst: str
    bytes: int
    submit_t: float
    complete_t: float
    e2e: float
    buckets: dict[str, float]
    critical_leg: str | None
    legs: list[dict[str, Any]] = field(default_factory=list)

    @property
    def edge(self) -> str:
        return f"{self.src}->{self.dst}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready shape (seconds-suffixed keys for the buckets)."""
        return {
            "message": self.key,
            "flow": self.flow,
            "edge": self.edge,
            "bytes": self.bytes,
            "submit_t": self.submit_t,
            "complete_t": self.complete_t,
            "e2e_s": self.e2e,
            "buckets_s": dict(self.buckets),
            "critical_leg": self.critical_leg,
            "legs": list(self.legs),
        }


def _balanced(buckets: dict[str, float], total: float) -> dict[str, float]:
    """Force ``sum(buckets) == total`` exactly, residual in unattributed.

    The named buckets are clipped partitions of disjoint sub-intervals
    of ``[submit, complete]``, so the residual is non-negative up to
    float rounding; any tiny negative residual is shaved off the largest
    named bucket rather than reported as negative time.
    """
    attributed = sum(v for k, v in buckets.items() if k != "unattributed")
    residual = total - attributed
    if residual < 0.0:
        largest = max(
            (k for k in buckets if k != "unattributed"), key=buckets.__getitem__
        )
        buckets[largest] += residual  # residual is a tiny fp negative
        residual = 0.0
    buckets["unattributed"] = residual
    return buckets


def attribute_chain(
    chain: MessageChain,
    hold_windows: Mapping[str, list[tuple[float, float | None]]] | None = None,
) -> MessageBlame | None:
    """Attribute one completed chain; None when it never completed."""
    if chain.complete_t is None:
        return None
    t0 = chain.submit_t
    t1 = max(chain.complete_t, t0)
    total = t1 - t0
    buckets = dict.fromkeys(BLAME_BUCKETS, 0.0)
    legs = [leg for leg in chain.legs if leg.done_t is not None]
    crit = max(legs, key=lambda leg: leg.done_t, default=None)
    if crit is not None:
        send = crit.send_t if crit.send_t is not None else crit.dispatch_t
        send = min(max(send if send is not None else t0, t0), t1)
        deliver = min(max(crit.done_t, send), t1)
        # -- queue span [t0, send]: rdv beats hold beats nic_queue ------
        rdv = interval_overlap(
            merge_intervals(
                (start, end if end is not None else send)
                for start, end in chain.rdv_windows
            ),
            t0,
            send,
        )
        windows = (hold_windows or {}).get(chain.src, ())
        hold = subtract_intervals(
            interval_overlap(
                merge_intervals(
                    (start, end if end is not None else send)
                    for start, end in windows
                ),
                t0,
                send,
            ),
            rdv,
        )
        buckets["rdv"] = total_length(rdv)
        buckets["hold"] = total_length(hold)
        buckets["nic_queue"] = max(
            (send - t0) - buckets["rdv"] - buckets["hold"], 0.0
        )
        # -- transit span [send, arrival]: retransmit, service, wire ----
        arrival = crit.arrival_t
        t_phys = min(max(arrival if arrival is not None else deliver, send), deliver)
        transit = t_phys - send
        rounds = [t for t in crit.retransmits if send < t <= t_phys]
        if rounds:
            buckets["retransmit"] = min(max(rounds) - send, transit)
        buckets["service"] = max(
            min(crit.occupancy or 0.0, transit - buckets["retransmit"]), 0.0
        )
        buckets["wire"] = max(
            transit - buckets["retransmit"] - buckets["service"], 0.0
        )
        # -- receive span [arrival, deliver]: reorder-buffer residency --
        buckets["reorder"] = max(deliver - t_phys, 0.0)
    blame = MessageBlame(
        key=chain.key,
        flow=chain.flow,
        src=chain.src,
        dst=chain.dst or "?",
        bytes=chain.bytes,
        submit_t=t0,
        complete_t=t1,
        e2e=total,
        buckets=_balanced(buckets, total),
        critical_leg=crit.key if crit is not None else None,
    )
    for leg in chain.legs:
        blame.legs.append(
            {
                "leg": leg.key,
                "nic": leg.nic,
                "kind": leg.packet_kind,
                "bytes": leg.bytes,
                "send_t": leg.send_t,
                "deliver_t": leg.done_t,
                "retransmits": len(leg.retransmits),
                "reordered": leg.reorder_enter_t is not None,
                "critical": crit is not None and leg is crit,
            }
        )
    return blame


# ----------------------------------------------------------------------
# report over a whole trace
# ----------------------------------------------------------------------
@dataclass(slots=True)
class CausalReport:
    """Attribution for every completed message in one trace."""

    messages: list[MessageBlame] = field(default_factory=list)
    incomplete: int = 0
    trace_seen: int | None = None
    trace_dropped: int = 0

    @property
    def truncated(self) -> bool:
        return self.trace_dropped > 0

    def edges(self) -> dict[str, dict[str, Any]]:
        """Per-edge blame sums and fractions."""
        out: dict[str, dict[str, Any]] = {}
        for blame in self.messages:
            slot = out.setdefault(
                blame.edge,
                {
                    "messages": 0,
                    "e2e_s": 0.0,
                    "buckets_s": dict.fromkeys(BLAME_BUCKETS, 0.0),
                },
            )
            slot["messages"] += 1
            slot["e2e_s"] += blame.e2e
            for bucket, value in blame.buckets.items():
                slot["buckets_s"][bucket] += value
        for slot in out.values():
            e2e = slot["e2e_s"]
            slot["fractions"] = {
                bucket: (value / e2e if e2e > 0 else 0.0)
                for bucket, value in slot["buckets_s"].items()
            }
        return out

    def slowest(self, k: int) -> list[MessageBlame]:
        """The ``k`` highest-latency attributed messages."""
        return sorted(self.messages, key=lambda b: b.e2e, reverse=True)[:k]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready shape: every message plus the per-edge rollup."""
        return {
            "messages": [b.to_dict() for b in self.messages],
            "edges": self.edges(),
            "incomplete": self.incomplete,
            "truncated": self.truncated,
            "trace_dropped": self.trace_dropped,
            "trace_seen": self.trace_seen,
        }


def export_blame(
    edges: Mapping[str, Mapping[str, Any]], registry
) -> None:
    """Mirror per-edge blame sums and fractions into a metrics registry.

    ``edges`` is the :meth:`CausalReport.edges` /
    :class:`TailExemplars` shape: ``{edge: {"e2e_s": ..., "buckets_s":
    {bucket: seconds}}}``.  Writes ``repro_blame_seconds_total``
    (counter) and ``repro_blame_fraction`` (gauge) per (edge, bucket).
    """
    for edge, slot in edges.items():
        e2e = slot["e2e_s"]
        for bucket, value in slot["buckets_s"].items():
            registry.counter(
                BLAME_SECONDS_METRIC,
                {"edge": edge, "bucket": bucket},
                help="Attributed end-to-end latency per blame bucket",
            ).set_total(value)
            registry.gauge(
                BLAME_FRACTION_METRIC,
                {"edge": edge, "bucket": bucket},
                help="Fraction of end-to-end latency per blame bucket",
            ).set(value / e2e if e2e > 0 else 0.0)


def attribute_events(events: Iterable[TraceEvent]) -> CausalReport:
    """Run span reconstruction + attribution over a full event stream."""
    collector = SpanCollector()
    collector.ingest_all(events)
    collector.finish()
    report = CausalReport(
        incomplete=collector.incomplete,
        trace_seen=collector.trace_seen,
        trace_dropped=collector.trace_dropped,
    )
    for chain in collector.drain_completed():
        blame = attribute_chain(chain, collector.hold_windows)
        if blame is not None:
            report.messages.append(blame)
    return report


# ----------------------------------------------------------------------
# slowest-K exemplar reservoir (live tracer sink)
# ----------------------------------------------------------------------
class TailExemplars:
    """Keep full span chains of the slowest-K messages per edge.

    Subscribes as a tracer sink next to the ring buffer: while the ring
    keeps the *last* N raw events, this keeps the *worst* K attributed
    messages per directed edge (plus running per-edge blame sums), so
    ``obs why`` evidence survives eviction.  ``snapshot()`` is
    JSON-able and ships over the live FLUSH protocol.
    """

    __slots__ = ("k", "messages_attributed", "_collector", "_edges")

    def __init__(self, k: int = 4) -> None:
        self.k = int(k)
        self.messages_attributed = 0
        self._collector = SpanCollector()
        self._edges: dict[str, dict[str, Any]] = {}

    def __call__(self, event: TraceEvent) -> None:
        self._collector.ingest(event)
        if self._collector.completed:
            self._absorb()

    def _absorb(self) -> None:
        for chain in self._collector.drain_completed():
            blame = attribute_chain(chain, self._collector.hold_windows)
            if blame is not None:
                self.add(blame)

    def add(self, blame: MessageBlame) -> None:
        """Fold one attributed message into its edge's reservoir."""
        slot = self._edges.setdefault(
            blame.edge,
            {
                "messages": 0,
                "e2e_s": 0.0,
                "buckets_s": dict.fromkeys(BLAME_BUCKETS, 0.0),
                "exemplars": [],
            },
        )
        self.messages_attributed += 1
        slot["messages"] += 1
        slot["e2e_s"] += blame.e2e
        for bucket, value in blame.buckets.items():
            slot["buckets_s"][bucket] += value
        exemplars: list[MessageBlame] = slot["exemplars"]
        exemplars.append(blame)
        exemplars.sort(key=lambda b: b.e2e, reverse=True)
        del exemplars[self.k :]

    def finish(self) -> None:
        """Close out live mirror chains with full delivery coverage."""
        self._collector.finish()
        self._absorb()

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready per-edge blame sums, fractions, and exemplars."""
        edges: dict[str, Any] = {}
        for edge, slot in self._edges.items():
            e2e = slot["e2e_s"]
            edges[edge] = {
                "messages": slot["messages"],
                "e2e_s": e2e,
                "buckets_s": dict(slot["buckets_s"]),
                "fractions": {
                    bucket: (value / e2e if e2e > 0 else 0.0)
                    for bucket, value in slot["buckets_s"].items()
                },
                "exemplars": [b.to_dict() for b in slot["exemplars"]],
            }
        return {
            "k": self.k,
            "messages": self.messages_attributed,
            "incomplete": self._collector.incomplete,
            "edges": edges,
        }

    def export(self, registry) -> None:
        """Mirror accumulated blame into a metrics registry."""
        export_blame(self._edges, registry)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def _us(seconds: float) -> str:
    return f"{seconds * 1e6:,.2f} us"


def render_waterfall(blame: MessageBlame, width: int = 44) -> str:
    """One message's blame as an ASCII waterfall."""
    lines = [
        f"message {blame.key}  flow={blame.flow or '?'}  {blame.edge}  "
        f"{blame.bytes} B  e2e {_us(blame.e2e)}"
    ]
    for bucket in BLAME_BUCKETS:
        value = blame.buckets.get(bucket, 0.0)
        if value <= 0.0 and bucket != "unattributed":
            continue
        frac = value / blame.e2e if blame.e2e > 0 else 0.0
        bar = "#" * max(round(frac * width), 1 if value > 0 else 0)
        lines.append(
            f"  {bucket:<12} {_us(value):>16}  {frac:>6.1%}  |{bar}"
        )
    for leg in blame.legs:
        marker = "*" if leg["critical"] else " "
        rtx = f" rtx={leg['retransmits']}" if leg["retransmits"] else ""
        reorder = " reordered" if leg["reordered"] else ""
        lines.append(
            f"  {marker}leg {leg['leg']} via {leg['nic'] or '?'} "
            f"({leg['kind'] or '?'}, {leg['bytes']} B){rtx}{reorder}"
        )
    return "\n".join(lines)


def truncation_warning(dropped: int, seen: int | None) -> str:
    """The loud eviction warning ``obs analyze``/``obs why`` print."""
    total = f" of {seen} recorded" if seen else ""
    return (
        "WARNING: trace is TRUNCATED — the flight recorder evicted "
        f"{dropped} event(s){total}; spans that started before the "
        "ring buffer's horizon are missing or incomplete. Attribution "
        "below covers only the surviving window."
    )


def render_report(
    report: CausalReport,
    *,
    slowest: int = 5,
    message: str | None = None,
    edge: str | None = None,
) -> str:
    """Human-readable blame report: per-edge table plus waterfalls."""
    lines: list[str] = []
    if report.truncated:
        lines.append(truncation_warning(report.trace_dropped, report.trace_seen))
        lines.append("")
    selected = report.messages
    if edge is not None:
        wanted = edge.replace(":", "->", 1) if "->" not in edge else edge
        selected = [b for b in selected if b.edge == wanted]
    if message is not None:
        selected = [
            b
            for b in selected
            if b.key == message or b.key.rpartition("#m")[2] == message
        ]
        if not selected:
            lines.append(f"no attributed message matches {message!r}")
    else:
        selected = sorted(selected, key=lambda b: b.e2e, reverse=True)[:slowest]
    lines.append(
        f"== causal attribution: {len(report.messages)} message(s), "
        f"{report.incomplete} incomplete =="
    )
    edges = report.edges()
    if edges:
        lines.append("")
        lines.append("per-edge blame fractions:")
        header = f"  {'edge':<14} {'msgs':>5} {'e2e':>14}" + "".join(
            f" {b:>11}" for b in BLAME_BUCKETS
        )
        lines.append(header)
        for name in sorted(edges):
            slot = edges[name]
            row = (
                f"  {name:<14} {slot['messages']:>5} {_us(slot['e2e_s']):>14}"
            )
            for bucket in BLAME_BUCKETS:
                row += f" {slot['fractions'][bucket]:>10.1%}"
            lines.append(row)
    for blame in selected:
        lines.append("")
        lines.append(render_waterfall(blame))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# CLI: python -m repro obs why
# ----------------------------------------------------------------------
def main(args) -> int:
    """Entry point for ``python -m repro obs why``."""
    from repro.obs.export import load_events

    events = load_events(args.trace)
    report = attribute_events(events)
    if getattr(args, "json", False):
        payload = report.to_dict()
        if args.message is None:
            payload["messages"] = [
                b.to_dict() for b in report.slowest(args.slowest)
            ]
        print(json.dumps(payload, indent=2))
    else:
        print(
            render_report(
                report,
                slowest=args.slowest,
                message=args.message,
                edge=args.edge,
            )
        )
    if report.truncated:
        print(
            truncation_warning(report.trace_dropped, report.trace_seen),
            file=sys.stderr,
        )
    return 0 if report.messages else 1
