"""Regression diffing: ``python -m repro obs diff BASELINE CANDIDATE``.

Compares two comparable artifacts and reports which indicators moved,
optionally failing (``--check``) when one moved past a threshold in its
*bad* direction.  Two input shapes are accepted, detected per file:

* a ``BENCH_*.json`` benchmark result (the ``{"schema": 1, "metrics":
  {...}}`` family written by :mod:`repro.bench.kernel` and
  :mod:`repro.bench.live`);
* any trace file the observability plane can load (JSONL or Chrome
  JSON), which is run through :func:`repro.obs.analyze.analyze_file`
  and reduced to its summary metrics.

Every metric name is classified by direction — latency-ish names are
worse when they rise, throughput-ish names are worse when they fall —
and names matching neither family are reported but never gated: a
number whose good direction we cannot name must not fail CI.  Use
``--ignore GLOB`` (repeatable) to exclude wall-clock-noisy keys such as
``*_us`` on shared runners.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatch
from pathlib import Path

from repro.obs.analyze import analyze_file, summary_metrics
from repro.util.errors import ConfigurationError

__all__ = ["DiffEntry", "load_comparable", "compare", "render_diff", "main"]

#: Substrings marking a metric as worse-when-higher (latency family).
WORSE_IF_HIGHER = (
    "latency",
    "rtt",
    "corrupt",
    "dropped",
    "clamped",
    "miss",
    "retransmit",
    "timeout",
    "starv",
    "burn",
    "unattributed",
    "_us",
)

#: Substrings marking a metric as worse-when-lower (throughput family).
WORSE_IF_LOWER = (
    "ratio",
    "throughput",
    "verified",
    "messages",
    "samples",
    "crossings",
    "rate",
)

#: Relative change tolerated in the bad direction before --check fails.
DEFAULT_THRESHOLD = 0.2


@dataclass(frozen=True, slots=True)
class DiffEntry:
    """One compared metric."""

    key: str
    base: float | None  #: None when the key is new in the candidate
    cand: float | None  #: None when the key vanished from the candidate
    direction: str  #: "higher-is-worse" | "lower-is-worse" | "neutral"
    regressed: bool
    note: str = ""

    @property
    def delta(self) -> float:
        if self.base is None or self.cand is None:
            return 0.0
        return self.cand - self.base


def direction_of(key: str) -> str:
    """Classify a metric name's bad direction (see module docstring)."""
    lowered = key.lower()
    if any(mark in lowered for mark in WORSE_IF_HIGHER):
        return "higher-is-worse"
    if any(mark in lowered for mark in WORSE_IF_LOWER):
        return "lower-is-worse"
    return "neutral"


def load_comparable(path: str | Path) -> tuple[str, dict[str, float]]:
    """Load one input file; returns ``(kind, flat_metrics)``.

    ``kind`` is ``"bench"`` for a benchmark-result JSON, ``"trace"``
    for anything that loads as a trace.
    """
    path = Path(path)
    if not path.exists():
        raise ConfigurationError(f"no such file: {path}")
    if path.suffix == ".json":
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            payload = None
        if isinstance(payload, dict) and "metrics" in payload:
            metrics = payload["metrics"]
            if not isinstance(metrics, dict):
                raise ConfigurationError(
                    f"{path}: 'metrics' is not an object — not a bench result"
                )
            return "bench", {str(k): float(v) for k, v in metrics.items()}
    return "trace", summary_metrics(analyze_file(path))


def compare(
    base: dict[str, float],
    cand: dict[str, float],
    *,
    threshold: float = DEFAULT_THRESHOLD,
    ignore: tuple[str, ...] = (),
) -> list[DiffEntry]:
    """Diff two flat metric mappings; entries sorted, regressions first.

    Regression rules, applied only along a key's bad direction:

    * baseline nonzero — fail when the relative change exceeds
      ``threshold``;
    * baseline zero, higher-is-worse — any positive candidate fails
      (``0 -> anything`` retransmits/corruptions is categorically new
      badness, not a percentage);
    * a key present in the baseline but missing from the candidate is a
      structural regression regardless of direction.
    """

    def ignored(key: str) -> bool:
        return any(fnmatch(key, pattern) for pattern in ignore)

    entries: list[DiffEntry] = []
    for key in sorted(set(base) | set(cand)):
        if ignored(key):
            continue
        b = base.get(key)
        c = cand.get(key)
        direction = direction_of(key)
        if c is None:
            entries.append(
                DiffEntry(key, b, None, direction, True, "missing from candidate")
            )
            continue
        if b is None:
            entries.append(DiffEntry(key, None, c, direction, False, "new"))
            continue
        regressed = False
        note = ""
        if direction == "higher-is-worse":
            if b == 0:
                regressed = c > 0
                if regressed:
                    note = "was zero"
            elif c > b * (1 + threshold):
                regressed = True
        elif direction == "lower-is-worse":
            if b > 0 and c < b * (1 - threshold):
                regressed = True
        entries.append(DiffEntry(key, b, c, direction, regressed, note))
    entries.sort(key=lambda e: (not e.regressed, e.key))
    return entries


def _fmt(value: float | None) -> str:
    if value is None:
        return "—"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def render_diff(entries: list[DiffEntry], *, threshold: float) -> str:
    """Human-readable diff table; regressions flagged with ``!``."""
    lines = []
    regressions = [e for e in entries if e.regressed]
    width = max((len(e.key) for e in entries), default=3)
    for entry in entries:
        flag = "!" if entry.regressed else " "
        extra = f"  ({entry.note})" if entry.note else ""
        if entry.base not in (None, 0) and entry.cand is not None:
            rel = (entry.cand - entry.base) / entry.base
            change = f"{rel:+7.1%}"
        else:
            change = "      —"
        lines.append(
            f" {flag} {entry.key.ljust(width)}  {_fmt(entry.base):>12} -> "
            f"{_fmt(entry.cand):>12}  {change}  [{entry.direction}]{extra}"
        )
    lines.append("")
    lines.append(
        f"{len(regressions)} regression(s) beyond ±{threshold:.0%} "
        f"across {len(entries)} compared metric(s)"
    )
    return "\n".join(lines)


def main(args) -> int:
    """Entry point for ``python -m repro obs diff``."""
    threshold = args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    try:
        base_kind, base = load_comparable(args.baseline)
        cand_kind, cand = load_comparable(args.candidate)
    except ConfigurationError as exc:
        print(f"obs diff: {exc}")
        return 2
    print(f"== obs diff: {args.baseline} ({base_kind}) vs {args.candidate} ({cand_kind}) ==")
    entries = compare(
        base, cand, threshold=threshold, ignore=tuple(args.ignore or ())
    )
    print(render_diff(entries, threshold=threshold))
    if args.check and any(e.regressed for e in entries):
        return 1
    return 0
