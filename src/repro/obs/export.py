"""Trace exporters: Chrome trace-event JSON (Perfetto) and JSON Lines.

The Chrome exporter maps the simulator's event stream onto the trace
event format ``chrome://tracing`` and https://ui.perfetto.dev consume:

* every **node** becomes a process (``pid``), with its NICs and its
  optimizer as named threads (tracks);
* ``nic.send`` → ``nic.idle`` pairs become duration spans (``B``/``E``)
  on the NIC track, so the Gantt view *is* the paper's "keep the NICs
  adequately busy" picture;
* rendezvous handshakes become **async spans** (``b``/``e``), keyed by
  their protocol token: park → ready (or park → timeout, labelled so);
* ``obs.sample`` records become **counter tracks** (``C``): queue
  depth/bytes per node, per-NIC busy fraction, retransmits in flight;
* ``live.recv`` records (a live peer decoding a wire frame) become
  **flow events** (``s``/``f``): an arrow from the sending NIC's
  ``nic.send`` span to the receiving peer's decode instant, keyed by the
  correlation id the sender stamped into the wire meta — in a merged
  multi-peer trace this draws every wire crossing across process lanes;
* everything else (dispatch decisions, activations, failovers) becomes
  instant events carrying their full detail dict in ``args``.

Timestamps are virtual microseconds (the trace format's native unit).

``load_events`` reads both export formats back into normalized
:class:`~repro.util.tracing.TraceEvent` lists, which is what the
``python -m repro obs analyze`` CLI operates on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Sequence

from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceEvent, event_to_dict, events_to_jsonl

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
    "load_events",
]

#: ``pid`` reserved for cluster-global tracks (sampler, transport).
_GLOBAL_PID = 1

#: Thread sort order inside a node's process group.
_TID_OPTIMIZER = 0


def _node_of_source(source: str) -> str | None:
    """The node a source belongs to, or None for global sources.

    Sources follow ``layer:name`` with node-scoped names either being
    the node itself (``engine:n0``) or dotted with it (``nic:n0.mx00``).
    """
    _, _, name = source.partition(":")
    if not name:
        return None
    head = name.split(".", 1)[0]
    return head if head.startswith("n") and head[1:].isdigit() else None


class _TrackAllocator:
    """Stable pid/tid assignment plus the metadata events naming them."""

    def __init__(self) -> None:
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[int, str], int] = {}
        self.metadata: list[dict[str, Any]] = [
            {
                "ph": "M",
                "pid": _GLOBAL_PID,
                "name": "process_name",
                "args": {"name": "cluster"},
            }
        ]

    def pid(self, node: str | None) -> int:
        if node is None:
            return _GLOBAL_PID
        pid = self._pids.get(node)
        if pid is None:
            pid = len(self._pids) + _GLOBAL_PID + 1
            self._pids[node] = pid
            self.metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "name": "process_name",
                    "args": {"name": f"node {node}"},
                }
            )
            self.metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "name": "process_sort_index",
                    "args": {"sort_index": pid},
                }
            )
        return pid

    def tid(self, pid: int, track: str) -> int:
        key = (pid, track)
        tid = self._tids.get(key)
        if tid is None:
            tid = sum(1 for (p, _) in self._tids if p == pid) + _TID_OPTIMIZER
            self._tids[key] = tid
            self.metadata.append(
                {
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "name": "thread_name",
                    "args": {"name": track},
                }
            )
        return tid

    def track_for(self, source: str) -> tuple[int, int]:
        """(pid, tid) of a source's own track."""
        layer, _, name = source.partition(":")
        node = _node_of_source(source)
        pid = self.pid(node)
        if layer == "engine":
            track = "optimizer"
        elif node is not None and name != node:
            track = f"{layer} {name}"
        else:
            track = source
        return pid, self.tid(pid, track)


def _us(time: float) -> float:
    return time * 1e6


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict[str, Any]:
    """Build the Chrome trace-event JSON object (see module docs)."""
    tracks = _TrackAllocator()
    out: list[dict[str, Any]] = []
    open_sends: dict[str, TraceEvent] = {}
    open_rdv: dict[Any, str] = {}  # token -> source (for orphan close)
    last_ts = 0.0

    for event in events:
        ts = _us(event.time)
        last_ts = max(last_ts, ts)
        kind = event.kind
        detail = event.detail
        pid, tid = tracks.track_for(event.source)

        if kind == "nic.send":
            open_sends[event.source] = event
            out.append(
                {
                    "ph": "B",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "name": f"send {detail.get('packet_kind', '?')}",
                    "cat": "nic",
                    "args": _jsonable_args(detail),
                }
            )
        elif kind == "nic.idle":
            if open_sends.pop(event.source, None) is not None:
                out.append({"ph": "E", "ts": ts, "pid": pid, "tid": tid})
        elif kind == "rdv.park":
            token = detail.get("token")
            open_rdv[token] = event.source
            out.append(
                {
                    "ph": "b",
                    "ts": ts,
                    "pid": pid,
                    "tid": tid,
                    "cat": "rdv",
                    "id": token,
                    "name": "rendezvous",
                    "args": _jsonable_args(detail),
                }
            )
        elif kind in ("rdv.ready", "rdv.timeout"):
            token = detail.get("token")
            if open_rdv.pop(token, None) is not None:
                out.append(
                    {
                        "ph": "e",
                        "ts": ts,
                        "pid": pid,
                        "tid": tid,
                        "cat": "rdv",
                        "id": token,
                        "name": "rendezvous",
                        "args": {"outcome": kind.split(".", 1)[1]},
                    }
                )
        elif kind == "obs.sample":
            out.extend(_sample_counters(event, tracks))
            # Also kept as an instant so trace files round-trip through
            # load_events without losing the sampler's full detail.
            out.append(_instant(event, ts, pid, tid))
            continue
        elif kind == "live.recv":
            out.extend(_flow_pair(event, ts, pid, tid, tracks))
            # The instant keeps the record loadable by load_events (the
            # flow pair is a projection, like counters are for samples).
            out.append(_instant(event, ts, pid, tid))
        else:
            out.append(_instant(event, ts, pid, tid))

    # Close anything still open so the JSON is a well-formed trace.
    for source, event in open_sends.items():
        pid, tid = tracks.track_for(source)
        out.append({"ph": "E", "ts": last_ts, "pid": pid, "tid": tid})
    for token, source in open_rdv.items():
        pid, tid = tracks.track_for(source)
        out.append(
            {
                "ph": "e",
                "ts": last_ts,
                "pid": pid,
                "tid": tid,
                "cat": "rdv",
                "id": token,
                "name": "rendezvous",
                "args": {"outcome": "unresolved"},
            }
        )

    return {
        "traceEvents": tracks.metadata + out,
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs", "time_unit": "virtual microseconds"},
    }


def _instant(event: TraceEvent, ts: float, pid: int, tid: int) -> dict[str, Any]:
    args = _jsonable_args(event.detail)
    args["source"] = event.source  # keeps load_events lossless
    return {
        "ph": "i",
        "ts": ts,
        "pid": pid,
        "tid": tid,
        "s": "t",
        "name": event.kind,
        "cat": event.kind.split(".", 1)[0],
        "args": args,
    }


def _flow_pair(
    event: TraceEvent, ts: float, pid: int, tid: int, tracks: _TrackAllocator
) -> list[dict[str, Any]]:
    """Flow start/finish (`ph: s`/`f`) for one ``live.recv`` record.

    The start sits on the sending NIC's track at the (aligned, when the
    merge ran) send timestamp — visually anchored to the ``nic.send``
    span that produced the frame; the finish sits on the receiver's
    track at decode time.  Without a correlation id there is nothing to
    key the arrow on, so the record stays a plain instant.
    """
    detail = event.detail
    corr = detail.get("corr")
    if corr is None:
        return []
    send_time = detail.get("send_time", detail.get("sent_at"))
    via = detail.get("via")
    if via is not None:
        src_pid, src_tid = tracks.track_for(f"nic:{via}")
    else:  # sender NIC unknown: anchor the start on the sender process
        src_pid, src_tid = tracks.track_for(f"live:{detail.get('src', '?')}")
    start_ts = _us(float(send_time)) if send_time is not None else ts
    flow = {"cat": "wire", "id": str(corr), "name": "wire"}
    return [
        {"ph": "s", "ts": min(start_ts, ts), "pid": src_pid, "tid": src_tid, **flow},
        {"ph": "f", "ts": ts, "pid": pid, "tid": tid, "bp": "e", **flow},
    ]


def _sample_counters(event: TraceEvent, tracks: _TrackAllocator) -> list[dict[str, Any]]:
    """Counter events (`ph: C`) for one ``obs.sample`` record."""
    ts = _us(event.time)
    detail = event.detail
    out: list[dict[str, Any]] = []

    def counter(pid: int, name: str, series: dict[str, Any]) -> None:
        out.append(
            {"ph": "C", "ts": ts, "pid": pid, "name": name, "args": series}
        )

    per_node_depth: dict[str, float] = {}
    per_node_bytes: dict[str, float] = {}
    for key, pair in detail.get("queues", {}).items():
        node = str(key).split("/", 1)[0]
        depth, n_bytes = pair[0], pair[1]
        per_node_depth[node] = per_node_depth.get(node, 0) + depth
        per_node_bytes[node] = per_node_bytes.get(node, 0) + n_bytes
    for node in per_node_depth:
        pid = tracks.pid(node)
        counter(pid, "queue depth", {"entries": per_node_depth[node]})
        counter(pid, "queue bytes", {"bytes": per_node_bytes[node]})
    for nic_name, fraction in detail.get("nic_busy", {}).items():
        pid = tracks.pid(_node_of_source(f"nic:{nic_name}"))
        counter(pid, f"busy {nic_name}", {"fraction": fraction})
    global_series = {
        "backlog": detail.get("backlog"),
        "retransmits in flight": detail.get("retransmits_in_flight"),
        "rendezvous in flight": detail.get("rendezvous_in_flight"),
        "holds armed": detail.get("holds_armed"),
    }
    for name, value in global_series.items():
        if value is not None:
            counter(_GLOBAL_PID, name, {name: value})
    # Per-edge p99 from the tail sketches (one counter track per edge),
    # so the Perfetto timeline shows tails moving alongside queue depth.
    for edge, p99 in (detail.get("tail_p99_us") or {}).items():
        counter(_GLOBAL_PID, f"p99 {edge}", {"us": p99})
    return out


def _jsonable_args(detail: dict[str, Any]) -> dict[str, Any]:
    # event_to_dict handles nested coercion; reuse it through a shim.
    return event_to_dict(TraceEvent(0.0, "", "", detail))["detail"]


# ----------------------------------------------------------------------
# file I/O
# ----------------------------------------------------------------------
def write_chrome_trace(path: str | Path, events: Iterable[TraceEvent]) -> None:
    """Write a ``.json`` Chrome/Perfetto trace file."""
    Path(path).write_text(
        json.dumps(to_chrome_trace(events)) + "\n", encoding="utf-8"
    )


def write_jsonl(path: str | Path, events: Sequence[TraceEvent]) -> None:
    """Write a ``.jsonl`` file (one event object per line)."""
    text = events_to_jsonl(events)
    Path(path).write_text(text + ("\n" if text else ""), encoding="utf-8")


def write_trace(path: str | Path, events: Sequence[TraceEvent]) -> str:
    """Write ``events`` in the format the extension names.

    ``.jsonl``/``.ndjson`` → JSON Lines; anything else → Chrome trace
    JSON.  Returns the format written (``"jsonl"`` or ``"chrome"``).
    """
    suffix = Path(path).suffix.lower()
    if suffix in (".jsonl", ".ndjson"):
        write_jsonl(path, events)
        return "jsonl"
    write_chrome_trace(path, events)
    return "chrome"


def load_events(path: str | Path) -> list[TraceEvent]:
    """Load a trace file (either export format) back into events.

    Chrome traces reconstruct from their instant events — duration and
    counter tracks are projections of the same records, so nothing the
    analyzer needs is lost.
    """
    text = Path(path).read_text(encoding="utf-8")
    stripped = text.lstrip()
    if not stripped:
        return []
    # Both formats start with "{": a Chrome trace is ONE JSON object
    # holding "traceEvents", JSONL is one object PER LINE.  Parse the
    # whole document first; only a Chrome trace survives that.
    payload = None
    if stripped.startswith("{"):
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None  # multiple lines of objects: JSONL
    if isinstance(payload, dict) and "traceEvents" not in payload:
        if {"time", "source", "kind"} <= payload.keys():
            payload = None  # a single-event JSONL file
        else:
            raise ConfigurationError(
                f"{path}: JSON object without 'traceEvents' is not a trace"
            )
    if isinstance(payload, dict):
        trace_events = payload["traceEvents"]
        events = []
        for entry in trace_events:
            if entry.get("ph") != "i":
                continue
            args = dict(entry.get("args", {}))
            source = args.pop("source", f"pid:{entry.get('pid')}")
            events.append(
                TraceEvent(entry["ts"] / 1e6, source, entry["name"], args)
            )
        return events
    events = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
            events.append(
                TraceEvent(
                    record["time"],
                    record["source"],
                    record["kind"],
                    record.get("detail", {}),
                )
            )
        except (json.JSONDecodeError, KeyError, TypeError) as bad:
            raise ConfigurationError(f"{path}:{lineno}: bad trace line: {bad}") from None
    return events
