"""Online sweeps of the lookahead window and rearrangement budget.

The paper's closing future work: "dynamically adapt[ing] the lookahead
window size and the number of rearrangements evaluated" to the
workload.  The controller treats each ``(lookahead_window,
search_budget)`` pair as a bandit arm, measures every arm over a fixed
number of scheduling decisions, and steers with one of two classic
schemes:

* **epsilon-greedy** — round-robin until every arm has one trial, then
  exploit the best-scoring arm, exploring a random one with probability
  ``epsilon``;
* **successive halving** — trial every surviving arm once per round,
  keep the better half, repeat until a single arm remains (then stay
  on it).

Reward is *payload bytes per dispatched packet* over the trial — the
aggregation quality the whole optimizer exists to maximize — read from
the engine's own cumulative counters, so measuring costs nothing on the
hot path.  Applying an arm mutates the engine's **private** config copy
(the tuner makes one at install time); the tuner invalidates any
installed specialization when the arm changes, since specializations
fold the very values the sweep moves.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.tuner.config import SweepConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase

__all__ = ["SweepController"]


class SweepController:
    """Epsilon-greedy / successive-halving arm selection over live metrics."""

    def __init__(self, engine: "CommEngineBase", config: SweepConfig) -> None:
        self.engine = engine
        self.config = config
        #: All arms, as ``(lookahead_window, search_budget)`` pairs.
        self.arms: list[tuple[int, int]] = [
            (w, b) for w in config.windows for b in config.budgets
        ]
        #: arm → list of per-trial rewards.
        self.rewards: dict[tuple[int, int], list[float]] = {a: [] for a in self.arms}
        self.trials = 0
        self.current: tuple[int, int] | None = None
        self._rng = random.Random(config.seed)
        self._decisions = 0
        self._start_payload = 0
        self._start_dispatches = 0
        # Successive halving state: the surviving arms of this round and
        # the cursor into them; None once converged to a single arm.
        self._round: list[tuple[int, int]] | None = (
            list(self.arms) if config.mode == "halving" else None
        )
        self._cursor = 0
        self.converged: tuple[int, int] | None = None

    # ------------------------------------------------------------------
    # the per-decision hook
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Advance one decision; returns True when a new arm was applied."""
        if self.current is None:
            self._apply(self._pick())
            return True
        self._decisions += 1
        if self._decisions < self.config.trial_decisions:
            return False
        self._finish_trial()
        nxt = self._pick()
        if nxt == self.current:
            # Same arm re-measured: fresh trial window, no config change.
            self._begin_trial()
            return False
        self._apply(nxt)
        return True

    def _apply(self, arm: tuple[int, int]) -> None:
        self.current = arm
        window, budget = arm
        self.engine.config.lookahead_window = window
        self.engine.config.search_budget = budget
        self._begin_trial()

    def _begin_trial(self) -> None:
        stats = self.engine.stats
        self._decisions = 0
        self._start_payload = stats.payload_bytes
        self._start_dispatches = stats.dispatches

    def _finish_trial(self) -> None:
        stats = self.engine.stats
        dispatches = stats.dispatches - self._start_dispatches
        payload = stats.payload_bytes - self._start_payload
        reward = payload / dispatches if dispatches else 0.0
        assert self.current is not None
        self.rewards[self.current].append(reward)
        self.trials += 1

    # ------------------------------------------------------------------
    # arm selection
    # ------------------------------------------------------------------
    def _mean(self, arm: tuple[int, int]) -> float:
        rewards = self.rewards[arm]
        return sum(rewards) / len(rewards) if rewards else 0.0

    def best_arm(self) -> tuple[int, int] | None:
        """The best-scoring tried arm, or None before any trial."""
        tried = [a for a in self.arms if self.rewards[a]]
        if not tried:
            return None
        return max(tried, key=self._mean)

    def _pick(self) -> tuple[int, int]:
        if self.config.mode == "halving":
            return self._pick_halving()
        return self._pick_epsilon()

    def _pick_epsilon(self) -> tuple[int, int]:
        for arm in self.arms:
            if not self.rewards[arm]:
                return arm  # explore untried arms first, in grid order
        if self._rng.random() < self.config.epsilon:
            return self._rng.choice(self.arms)
        best = self.best_arm()
        assert best is not None
        return best

    def _pick_halving(self) -> tuple[int, int]:
        assert self._round is not None
        if self.converged is not None:
            return self.converged
        if self._cursor >= len(self._round):
            # Round complete: keep the better half (at least one arm).
            survivors = sorted(self._round, key=self._mean, reverse=True)
            self._round = survivors[: max(1, len(survivors) // 2)]
            self._cursor = 0
            if len(self._round) == 1:
                self.converged = self._round[0]
                return self.converged
        arm = self._round[self._cursor]
        self._cursor += 1
        return arm

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-able state (CLI reports and the ``/tuner`` endpoint)."""
        best = self.best_arm()
        return {
            "mode": self.config.mode,
            "arms": len(self.arms),
            "trials": self.trials,
            "current": list(self.current) if self.current else None,
            "best": list(best) if best else None,
            "converged": list(self.converged) if self.converged else None,
            "rewards": {
                f"w{w}/b{b}": round(self._mean((w, b)), 2)
                for (w, b) in self.arms
                if self.rewards[(w, b)]
            },
        }
