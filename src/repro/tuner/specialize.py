"""Regime specializations: synthesized fast-path decision functions.

When the :class:`~repro.tuner.regime.RegimeTracker` declares a regime
stable, the tuner synthesizes a **specialized** decision function for
the engine's strategy: a closure with everything that cannot change
while the regime holds folded into its environment — resolved driver
capabilities (cost constants, max aggregation width), engine-config
values (lookahead window, search budget, stripe chunk), the
precomputed width ladder, the multirail flag.  The general path
re-derives all of this on *every* decision; the specialized path pays
for it once at synthesis time.

Correctness contract (pinned by the hypothesis property tests):

* a specialized function returns **bit-identical** decisions to the
  general path it was synthesized from, including side effects the
  rest of the system reads (budget accounting, score cache, explain
  fields) — specialization is an evaluation-order optimization, never
  a behavior change;
* every folded assumption is re-checked by a cheap guard at the top of
  the closure; a violated guard returns the :data:`MISS` sentinel and
  the :class:`TunedStrategy` wrapper falls through to the general path
  *within the same decision* — drift can make a specialization useless,
  never wrong.

``tuner: off`` installs no wrapper at all, so the escape hatch is not
"a disabled branch" but the literal absence of this module from the
hot path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.core import kernel
from repro.core.cost import CostModel
from repro.core.plan import Hold, TransferPlan
from repro.core.strategies import search as search_mod
from repro.core.strategies._builder import build_from_queue
from repro.core.strategies.aggregation import AggregationStrategy
from repro.core.strategies.auto import AutoStrategy
from repro.core.strategies.base import Strategy
from repro.core.strategies.nagle import NagleStrategy
from repro.core.strategies.search import BoundedSearchStrategy
from repro.drivers.base import Driver
from repro.network.wire import PacketKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase
    from repro.tuner import Tuner

__all__ = ["MISS", "Specialization", "TunedStrategy", "synthesize"]


class _Miss:
    """Sentinel: a specialized closure declined (guard failed)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<tuner MISS>"


#: Returned by specialized closures instead of a plan when one of their
#: folded assumptions no longer holds; the wrapper then runs the
#: general path in the same decision.
MISS = _Miss()


class Specialization:
    """One installed fast path: per-driver closures plus bookkeeping."""

    __slots__ = ("spec_id", "regime", "strategy_name", "fns", "hits", "misses")

    def __init__(
        self,
        spec_id: str,
        regime: str,
        strategy_name: str,
        fns: dict[int, Callable[["CommEngineBase"], Any]],
    ) -> None:
        self.spec_id = spec_id
        self.regime = regime
        self.strategy_name = strategy_name
        #: ``id(driver)`` → specialized closure taking just the engine.
        self.fns = fns
        self.hits = 0
        self.misses = 0

    def summary(self) -> dict:
        """JSON-able identity and hit/miss counters of this fast path."""
        return {
            "id": self.spec_id,
            "regime": self.regime,
            "strategy": self.strategy_name,
            "drivers": len(self.fns),
            "hits": self.hits,
            "misses": self.misses,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Specialization({self.spec_id!r}, hits={self.hits})"


# ----------------------------------------------------------------------
# synthesizers, one per strategy type
# ----------------------------------------------------------------------
def _aggregate_fn(
    strat: AggregationStrategy, engine: "CommEngineBase", driver: Driver
) -> Callable[["CommEngineBase"], Any]:
    """Aggregation with the per-packet segment limit pre-resolved."""
    folded_max = strat.max_items
    limit = folded_max if folded_max is not None else driver.max_segments_per_packet()

    def fn(engine: "CommEngineBase") -> Any:
        if strat.max_items != folded_max:
            return MISS
        for queue in engine.queues_for(driver):
            if not len(queue):
                continue
            plan = build_from_queue(engine, driver, queue, max_items=limit)
            if plan is not None:
                return plan
        return None

    return fn


def _nagle_fn(
    strat: NagleStrategy,
    engine: "CommEngineBase",
    driver: Driver,
    inner_fn: Callable[["CommEngineBase"], Any],
) -> Callable[["CommEngineBase"], Any]:
    """Nagle wrapper with delay/min-bytes resolution folded + guarded."""
    config = engine.config
    delay = strat.delay if strat.delay is not None else config.nagle_delay
    min_bytes = (
        strat.min_bytes if strat.min_bytes is not None else config.nagle_min_bytes
    )

    def fn(engine: "CommEngineBase") -> Any:
        cfg = engine.config
        if (
            (strat.delay if strat.delay is not None else cfg.nagle_delay) != delay
            or (
                strat.min_bytes
                if strat.min_bytes is not None
                else cfg.nagle_min_bytes
            )
            != min_bytes
        ):
            return MISS
        decision = inner_fn(engine)
        if decision is MISS or not isinstance(decision, TransferPlan):
            return decision
        if decision.kind is not PacketKind.EAGER or delay <= 0:
            return decision
        if decision.payload_bytes >= min_bytes:
            return decision
        oldest = min(item.entry.submit_time for item in decision.items)
        deadline = oldest + delay
        if engine.sim.now >= deadline:
            return decision
        return Hold(wake_at=deadline)

    return fn


def _auto_fn(
    strat: AutoStrategy, engine: "CommEngineBase", driver: Driver, regime: str
) -> Callable[["CommEngineBase"], Any]:
    """Auto meta-strategy pinned to one regime's inner strategy.

    The regime guard doubles as the drift fallback: the moment the
    backlog crosses the threshold the closure declines and the general
    path (which handles both regimes) serves the decision.
    """
    selections = strat.selections
    agg = _aggregate_fn(strat._aggregate, engine, driver)
    inner_fn = (
        agg if regime == "deep" else _nagle_fn(strat._nagle, engine, driver, agg)
    )

    def fn(engine: "CommEngineBase") -> Any:
        # Probe the hysteresis without committing: on a MISS the general
        # path re-resolves and commits the identical state itself.
        resolved, contrary = strat._resolve_regime(engine.waiting.total_pending)
        if resolved != regime:
            return MISS
        result = inner_fn(engine)
        if result is MISS:
            return MISS
        strat._contrary = contrary
        selections[regime] += 1
        strat._last_regime = regime
        return result

    return fn


def _search_fn(
    strat: BoundedSearchStrategy, engine: "CommEngineBase", driver: Driver
) -> Callable[["CommEngineBase"], Any] | None:
    """Bounded search with the whole batched-kernel prologue folded.

    This is a clone of
    :meth:`~repro.core.strategies.search.BoundedSearchStrategy._make_plan_batched`
    with everything the general path recomputes per decision hoisted to
    synthesis time: driver cost constants, width ladder, config values,
    the multirail flag, bound methods.  The score cache, budget
    counters, and explain fields are the strategy's own, so specialized
    and general calls interleave without observable difference.
    """
    if not (
        search_mod._BATCHING_ENABLED
        and type(engine.cost) is CostModel
        and kernel.constants_for(driver).exact
    ):
        return None  # reference-kernel mode: keep the semantic oracle pure

    consts = kernel.constants_for(driver)
    config = engine.config
    window_limit = config.lookahead_window
    stripe_chunk = config.stripe_chunk
    multirail = len(engine.drivers) > 1
    cost = engine.cost
    driver_key = id(driver)
    full_width = consts.max_items_cap
    widths = strat._widths(full_width)
    folded_budget = strat.budget if strat.budget is not None else config.search_budget
    SeedBuild = kernel.SeedBuild
    score_packed = cost.score_packed
    score = cost.score
    probe_uniform_seeds = kernel.probe_uniform_seeds
    build_eager_arrays = kernel.build_eager_arrays
    oversized_waiting_indices = kernel.oversized_waiting_indices

    def fn(engine: "CommEngineBase") -> Any:
        cfg = engine.config
        budget = strat.budget if strat.budget is not None else cfg.search_budget
        if (
            budget != folded_budget
            or cfg.lookahead_window != window_limit
            or cfg.stripe_chunk != stripe_chunk
            or (len(engine.drivers) > 1) != multirail
            or engine.cost is not cost
        ):
            return MISS

        queues = engine.queues_for(driver)
        for queue in queues:
            arrays = queue.pending_arrays(window_limit)
            if arrays.n:
                for i in oversized_waiting_indices(arrays, consts):
                    engine.park_for_rendezvous(arrays.entries[i], queue.channel_id)

        now = engine.sim.now
        if now != strat._cache_now:
            strat._score_cache.clear()
            strat._cache_now = now
        cache = strat._score_cache

        best_plan: TransferPlan | None = None
        best_score = float("-inf")
        best_key: tuple | None = None
        best_build = None
        best_probe: tuple | None = None
        best_n = 0
        best_meta: tuple | None = None
        widest_seen = 0
        evaluated = 0
        out_of_budget = False
        explain = engine.sim.tracer.enabled
        try:
            for queue in queues:
                arrays = queue.pending_arrays(window_limit)
                version = queue.version
                channel_id = queue.channel_id

                stats = probe_uniform_seeds(
                    arrays, consts, full_width, widths, budget - evaluated
                )
                if stats is not None:
                    for seed, (base_items, payload, oldest, snaps) in enumerate(
                        stats
                    ):
                        if evaluated >= budget:
                            out_of_budget = True
                            break
                        evaluated += 1
                        if explain and base_items > widest_seen:
                            widest_seen = base_items
                        first = True
                        for width in widths:
                            if not first:
                                if evaluated >= budget:
                                    out_of_budget = True
                                    break
                                evaluated += 1
                            first = False
                            n_items = base_items if width >= base_items else width
                            key = (driver_key, channel_id, version, seed, n_items)
                            cached = cache.get(key)
                            if cached is None:
                                if n_items == base_items:
                                    p, o = payload, oldest
                                else:
                                    p = -1
                                    o = 0.0
                                    for cut_n, cut_p, cut_o in snaps:
                                        if cut_n == n_items:
                                            p, o = cut_p, cut_o
                                            break
                                    assert p >= 0, "probe width cut missing"
                                cached = (
                                    score_packed(consts, n_items, p, o, now),
                                    None,
                                )
                                cache[key] = cached
                            c_score, plan = cached
                            if c_score > best_score:
                                best_score = c_score
                                best_plan = plan
                                best_key = key
                                best_build = None
                                best_probe = (arrays, channel_id, seed)
                                best_n = n_items
                                if explain:
                                    best_meta = (channel_id, seed, n_items)
                        if out_of_budget:
                            break
                    else:
                        if len(stats) < arrays.n:
                            if evaluated >= budget:
                                out_of_budget = True
                            else:
                                evaluated += 1
                    if out_of_budget:
                        break
                    continue

                for seed in range(arrays.n):
                    if evaluated >= budget:
                        out_of_budget = True
                        break
                    base = build_eager_arrays(
                        arrays,
                        consts,
                        engine,
                        driver,
                        channel_id,
                        full_width,
                        seed,
                        False,
                        stripe_chunk,
                        multirail,
                    )
                    evaluated += 1
                    if base is None:
                        break
                    is_prefix_family = type(base) is SeedBuild
                    base_items = (
                        base.n_items if is_prefix_family else len(base.items)
                    )
                    if explain and base_items > widest_seen:
                        widest_seen = base_items
                    first = True
                    for width in widths:
                        if not first:
                            if evaluated >= budget:
                                out_of_budget = True
                                break
                            evaluated += 1
                        first = False
                        n_items = base_items if width >= base_items else width
                        key = (driver_key, channel_id, version, seed, n_items)
                        cached = cache.get(key)
                        if cached is None:
                            if is_prefix_family:
                                cached = (
                                    score_packed(
                                        consts,
                                        n_items,
                                        base.payload_prefix[n_items - 1],
                                        base.oldest_prefix[n_items - 1],
                                        now,
                                    ),
                                    None,
                                )
                            else:
                                cached = (score(base, now), base)
                            cache[key] = cached
                        c_score, plan = cached
                        if c_score > best_score:
                            best_score = c_score
                            best_plan = plan
                            best_key = key
                            best_build = base if is_prefix_family else None
                            best_probe = None
                            best_n = n_items
                            if explain:
                                best_meta = (channel_id, seed, n_items)
                    if out_of_budget:
                        break
                if out_of_budget:
                    break
            if best_key is None:
                return None
            if best_plan is None:
                if best_build is None:
                    assert best_probe is not None
                    p_arrays, p_channel, p_seed = best_probe
                    best_build = build_eager_arrays(
                        p_arrays,
                        consts,
                        engine,
                        driver,
                        p_channel,
                        full_width,
                        p_seed,
                        False,
                        stripe_chunk,
                        multirail,
                    )
                    assert type(best_build) is SeedBuild
                best_plan = best_build.plan(best_n)
                cache[best_key] = (best_score, best_plan)
            return best_plan
        finally:
            strat.last_evaluated = evaluated
            strat.candidates_evaluated += evaluated
            if explain:
                strat._last_explain = {
                    "candidates": evaluated,
                    "budget": budget,
                    "truncation": "budget" if out_of_budget else "exhausted",
                    "widest_items": widest_seen,
                    "best_score": best_score if best_key is not None else None,
                    "seed_channel": best_meta[0] if best_meta else None,
                    "seed": best_meta[1] if best_meta else None,
                }
            else:
                strat._last_explain = None

    return fn


def synthesize(
    strategy: Strategy,
    engine: "CommEngineBase",
    regime: str,
    seq: int,
) -> Specialization | None:
    """Build a specialization of ``strategy`` for a stable ``regime``.

    Returns ``None`` when the strategy type has no synthesizer (or the
    kernel runs in reference mode) — the tuner then keeps tracking but
    serves everything from the general path.
    """
    fns: dict[int, Callable] = {}
    for driver in engine.drivers:
        fn: Callable | None
        if type(strategy) is BoundedSearchStrategy:
            fn = _search_fn(strategy, engine, driver)
        elif type(strategy) is AutoStrategy:
            fn = _auto_fn(strategy, engine, driver, regime)
        elif type(strategy) is AggregationStrategy:
            fn = _aggregate_fn(strategy, engine, driver)
        elif type(strategy) is NagleStrategy:
            inner = strategy.inner
            if type(inner) is not AggregationStrategy:
                return None
            fn = _nagle_fn(
                strategy, engine, driver, _aggregate_fn(inner, engine, driver)
            )
        else:
            return None
        if fn is None:
            return None
        fns[id(driver)] = fn
    name = type(strategy).name
    return Specialization(f"{regime}/{name}#{seq}", regime, name, fns)


# ----------------------------------------------------------------------
# the wrapper behind the existing strategy interface
# ----------------------------------------------------------------------
class TunedStrategy(Strategy):
    """Strategy facade: specialized fast path first, general fallback.

    Installed by the tuner in place of the engine's strategy (never via
    the registry — it is infrastructure, not a scenario-selectable
    policy).  Each ``make_plan`` call first lets the tuner observe the
    decision (regime tracking, sweep stepping, install/invalidate),
    then tries the active specialization; a :data:`MISS` — no
    specialization, unknown driver, or a failed guard — falls through
    to the wrapped general path in the same call.
    """

    name = "tuned"

    def __init__(self, inner: Strategy, tuner: "Tuner") -> None:
        self.inner = inner
        self._tuner = tuner
        self._last_path = "general"
        self._last_spec: str | None = None

    def make_plan(
        self, engine: "CommEngineBase", driver: Driver
    ) -> TransferPlan | Hold | None:
        tuner = self._tuner
        tuner.on_decision(engine)
        spec = tuner.active
        if spec is not None:
            fn = spec.fns.get(id(driver))
            if fn is not None:
                result = fn(engine)
                if result is not MISS:
                    spec.hits += 1
                    tuner.stats.specialized += 1
                    self._last_path = "specialized"
                    self._last_spec = spec.spec_id
                    return result
                spec.misses += 1
                tuner.stats.misses += 1
        self._last_path = "general"
        self._last_spec = None
        return self.inner.make_plan(engine, driver)

    def explain_last(self) -> dict | None:
        explain: dict = {}
        inner = self.inner.explain_last()
        if inner:
            explain.update(inner)
        explain["inner_strategy"] = type(self.inner).name
        explain["tuner_path"] = self._last_path
        explain["tuner_regime"] = self._tuner.tracker.committed
        if self._last_spec is not None:
            explain["specialization"] = self._last_spec
        return explain

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TunedStrategy({self.inner!r})"
