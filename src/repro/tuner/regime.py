"""Regime tracking with hysteresis and drift commitment.

The auto strategy's backlog test (:mod:`repro.core.strategies.auto`)
classifies every single decision as "deep" or "sparse"; an alternating
workload therefore flips it every few decisions.  The tracker extends
that raw test with two time constants:

* a **drift window** — the raw label must contradict the committed
  regime for ``drift_window`` *consecutive* decisions before the
  tracker commits a flip (one stray burst is noise, a run of them is a
  phase change);
* a **dwell requirement** — a committed regime is only declared
  *stable* (and therefore worth specializing for) after ``min_dwell``
  decisions under it.

The tracker is deliberately observation-only: it never touches the
engine, so feeding it cannot change dispatch.
"""

from __future__ import annotations

__all__ = ["RegimeTracker"]


class RegimeTracker:
    """Hysteretic deep/sparse regime detection over the backlog signal."""

    __slots__ = (
        "min_dwell",
        "drift_window",
        "deep_backlog",
        "committed",
        "dwell",
        "flips",
        "observations",
        "_contrary",
    )

    def __init__(
        self,
        min_dwell: int = 8,
        drift_window: int = 3,
        deep_backlog: int = 8,
    ) -> None:
        self.min_dwell = min_dwell
        self.drift_window = drift_window
        self.deep_backlog = deep_backlog
        #: The regime the tracker currently stands behind.
        self.committed = "sparse"
        #: Decisions observed under the committed regime (resets on flip).
        self.dwell = 0
        #: Committed flips over the tracker's lifetime.
        self.flips = 0
        #: Total observations fed in.
        self.observations = 0
        # Consecutive raw observations contradicting the commitment.
        self._contrary = 0

    def classify(self, backlog: int) -> str:
        """The raw (hysteresis-free) label of one backlog reading."""
        return "deep" if backlog >= self.deep_backlog else "sparse"

    def observe(self, backlog: int) -> bool:
        """Feed one backlog reading; returns True on a committed flip."""
        self.observations += 1
        raw = self.classify(backlog)
        if raw == self.committed:
            self.dwell += 1
            self._contrary = 0
            return False
        self._contrary += 1
        if self._contrary < self.drift_window:
            # Contrary evidence, not yet a phase change: the dwell clock
            # keeps running — a stable regime does not lose its standing
            # to a burst shorter than the drift window.
            self.dwell += 1
            return False
        self.committed = raw
        self.dwell = 1
        self._contrary = 0
        self.flips += 1
        return True

    @property
    def stable(self) -> bool:
        """Whether the committed regime has dwelled long enough."""
        return self.dwell >= self.min_dwell

    def summary(self) -> dict:
        """JSON-able state (CLI reports and the ``/tuner`` endpoint)."""
        return {
            "regime": self.committed,
            "stable": self.stable,
            "dwell": self.dwell,
            "flips": self.flips,
            "observations": self.observations,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "stable" if self.stable else "settling"
        return f"RegimeTracker({self.committed!r}, {state}, dwell={self.dwell})"
