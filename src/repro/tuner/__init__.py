"""The online adaptation plane: observe → stabilize → specialize → invalidate.

``repro/tuner/`` is the controller the paper's thesis calls for: the
optimizer should not run one fixed configuration per session but adapt
to the workload it actually observes.  One :class:`Tuner` sits beside
each engine (sim and live planes alike) and closes three loops:

* **regime specialization** — a :class:`~repro.tuner.regime.RegimeTracker`
  watches the backlog with hysteresis; once a regime is stable, a
  specialized decision function (constant-folded over the current
  strategy, driver capabilities, and engine config — see
  :mod:`repro.tuner.specialize`) is installed behind the existing
  strategy interface and invalidated the moment the regime drifts;
* **online parameter sweeps** — a
  :class:`~repro.tuner.sweep.SweepController` runs epsilon-greedy or
  successive-halving trials over the lookahead window and rearrangement
  budget, scored by live engine counters (the paper's own future work);
* **tail-acting rail selection** — a
  :class:`~repro.tuner.rails.TailRailSelector` reorders the engine's
  rails by observed p99 against a budget, finally *acting* on the
  telemetry PR 8 only logged.

The escape hatch is structural: with ``tuner: off`` (the default)
nothing here is imported into the hot path — no wrapper, no selector,
no per-decision hook — so dispatch is byte-identical to a tuner-less
build, and the equivalence tests pin exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.tuner.config import RailsConfig, SweepConfig, TunerConfig
from repro.tuner.rails import TailRailSelector
from repro.tuner.regime import RegimeTracker
from repro.tuner.specialize import MISS, Specialization, TunedStrategy, synthesize
from repro.tuner.sweep import SweepController
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.engine import CommEngineBase
    from repro.obs.tails import TailView
    from repro.runtime.cluster import Cluster

__all__ = [
    "MISS",
    "ClusterTuner",
    "RailsConfig",
    "RegimeTracker",
    "Specialization",
    "SweepConfig",
    "SweepController",
    "TailRailSelector",
    "TunedStrategy",
    "Tuner",
    "TunerConfig",
    "TunerStats",
    "synthesize",
]

#: Decisions between tail-drift probes (quantile reads are not free).
_TAIL_PROBE_EVERY = 32


@dataclass(slots=True)
class TunerStats:
    """Cumulative per-engine tuner counters."""

    decisions: int = 0
    specialized: int = 0
    misses: int = 0
    installs: int = 0
    invalidations: int = 0

    @property
    def specialized_fraction(self) -> float:
        """Share of decisions served by a specialized fast path."""
        return self.specialized / self.decisions if self.decisions else 0.0


class Tuner:
    """One engine's online controller (install → observe → adapt)."""

    def __init__(
        self,
        engine: "CommEngineBase",
        config: TunerConfig | None = None,
        tail_view: "TailView | None" = None,
    ) -> None:
        self.engine = engine
        self.config = config if config is not None else TunerConfig()
        self.tail_view = tail_view if tail_view is not None else engine.tail_view
        self.tracker = RegimeTracker(
            min_dwell=self.config.min_dwell,
            drift_window=self.config.drift_window,
            deep_backlog=self.config.deep_backlog,
        )
        self.stats = TunerStats()
        self.sweep: SweepController | None = None
        self.rail_selector: TailRailSelector | None = None
        self.active: Specialization | None = None
        #: Every install/invalidate, as ``(event, spec_id, reason)``.
        self.history: list[tuple[str, str, str]] = []
        self.wrapper: TunedStrategy | None = None
        self._seq = 0
        self._unsupported: type | None = None
        self._tail_anchor_us: float | None = None
        self._installed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def install(self) -> None:
        """Wrap the engine's strategy and attach the sub-controllers."""
        if self._installed:
            raise ConfigurationError("tuner is already installed on this engine")
        self._installed = True
        engine = self.engine
        if self.config.sweep is not None:
            # Sweeps mutate config values; give this engine a private
            # copy so a config object shared across nodes stays put.
            engine.config = replace(engine.config)
            self.sweep = SweepController(engine, self.config.sweep)
        if self.config.rails is not None and self.tail_view is not None:
            self.rail_selector = TailRailSelector(self.tail_view, self.config.rails)
            engine.rail_selector = self.rail_selector
        self.wrapper = TunedStrategy(engine.strategy, self)
        engine.strategy = self.wrapper

    # ------------------------------------------------------------------
    # the per-decision hook (called by TunedStrategy.make_plan)
    # ------------------------------------------------------------------
    def on_decision(self, engine: "CommEngineBase") -> None:
        """Observe one decision: track the regime, adapt, (in)validate."""
        stats = self.stats
        stats.decisions += 1
        flipped = self.tracker.observe(engine.waiting.total_pending)
        if flipped and self.active is not None:
            self._invalidate("drift")
        if self.sweep is not None and self.sweep.step() and self.active is not None:
            # The arm change moved values the specialization folded.
            self._invalidate("sweep")
        if (
            self.active is not None
            and self.config.tail_drift_factor is not None
            and self.tail_view is not None
            and stats.decisions % _TAIL_PROBE_EVERY == 0
            and self._tail_drifted()
        ):
            self._invalidate("tail-drift")
        if self.active is None and self.tracker.stable:
            self._try_install()

    def _try_install(self) -> None:
        strategy = self.wrapper.inner if self.wrapper is not None else None
        if strategy is None or type(strategy) is self._unsupported:
            return
        spec = synthesize(strategy, self.engine, self.tracker.committed, self._seq + 1)
        if spec is None:
            # No synthesizer for this strategy (or reference-kernel
            # mode): remember, so stability does not retry every call.
            self._unsupported = type(strategy)
            return
        self._seq += 1
        self.active = spec
        self.stats.installs += 1
        self.history.append(("install", spec.spec_id, self.tracker.committed))
        self._tail_anchor_us = self._worst_rail_p99()

    def _invalidate(self, reason: str) -> None:
        spec = self.active
        assert spec is not None
        self.active = None
        self.stats.invalidations += 1
        self.history.append(("invalidate", spec.spec_id, reason))
        self._tail_anchor_us = None

    # ------------------------------------------------------------------
    # tail drift test
    # ------------------------------------------------------------------
    def _worst_rail_p99(self) -> float | None:
        if self.tail_view is None:
            return None
        rails = self.tail_view.rails()
        if not rails:
            return None
        return max(stats.p99_us for stats in rails.values())

    def _tail_drifted(self) -> bool:
        worst = self._worst_rail_p99()
        if worst is None:
            return False
        anchor = self._tail_anchor_us
        if anchor is None:
            # Tails appeared after install: anchor now, judge later.
            self._tail_anchor_us = worst
            return False
        factor = self.config.tail_drift_factor
        assert factor is not None
        return worst > max(anchor, 1.0) * factor

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """JSON-able controller state (CLI, ``/tuner``, FLUSH mirror)."""
        stats = self.stats
        out = {
            "decisions": stats.decisions,
            "specialized": stats.specialized,
            "specialized_fraction": round(stats.specialized_fraction, 4),
            "misses": stats.misses,
            "installs": stats.installs,
            "invalidations": stats.invalidations,
            "tracker": self.tracker.summary(),
            "active": self.active.summary() if self.active is not None else None,
            "history": [
                {"event": event, "specialization": spec_id, "detail": detail}
                for event, spec_id, detail in self.history
            ],
        }
        if self.sweep is not None:
            out["sweep"] = self.sweep.summary()
        if self.rail_selector is not None:
            out["rails"] = self.rail_selector.summary()
        return out


class ClusterTuner:
    """All of a cluster's per-engine tuners, installed as one unit."""

    def __init__(self, config: TunerConfig | None = None) -> None:
        self.config = config if config is not None else TunerConfig()
        self.tuners: dict[str, Tuner] = {}
        self._installed = False

    def install(self, cluster: "Cluster") -> None:
        """Attach one tuner per engine (after observability install)."""
        if self._installed:
            raise ConfigurationError("cluster tuner is already installed")
        if cluster.engine_kind != "optimizing":
            raise ConfigurationError(
                "the tuner requires the optimizing engine "
                f"(cluster runs {cluster.engine_kind!r})"
            )
        self._installed = True
        for name, engine in cluster.engines.items():
            tuner = Tuner(engine, self.config)
            tuner.install()
            self.tuners[name] = tuner

    def summary(self) -> dict:
        """Per-node tuner state plus cluster-level totals."""
        nodes = {name: tuner.summary() for name, tuner in self.tuners.items()}
        return {
            "nodes": nodes,
            "totals": {
                "decisions": sum(t.stats.decisions for t in self.tuners.values()),
                "specialized": sum(t.stats.specialized for t in self.tuners.values()),
                "installs": sum(t.stats.installs for t in self.tuners.values()),
                "invalidations": sum(
                    t.stats.invalidations for t in self.tuners.values()
                ),
            },
        }
