"""Tail-acting rail selection: the scheduler finally acts on tails.

PR 8 built the telemetry — per-rail service-time quantile sketches, a
:class:`~repro.obs.tails.TailView`, and a ``tail_hint`` logged on every
decide record but explicitly *not* acted on.  This module closes that
loop: installed as ``engine.rail_selector``, it reorders the engine's
driver iteration so the backlog head lands on rails whose observed p99
is within budget instead of whichever rail happens to be listed first.

Ordering, computed from the tail view and cached between refreshes:

1. rails **within** the p99 budget (and with enough samples to trust),
   best p99 first;
2. rails with **insufficient data**, in their original positions —
   never punish a rail for being unmeasured;
3. rails **over** budget, least-bad p99 first — but only demoted below
   the unmeasured ones when the SLO is actually burning (or no SLO is
   configured); a healthy SLO with over-budget rails means the budget
   is conservative, and churn would be gratuitous.

``engine.rail_selector`` is ``None`` by default; the engine then
iterates ``self.drivers`` exactly as before — byte identity of the
escape hatch is the absence of this object, not a disabled branch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.obs.tails import TailView, evaluate_slo
from repro.tuner.config import RailsConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.drivers.base import Driver

__all__ = ["TailRailSelector"]


class TailRailSelector:
    """Per-rail p99-budget preference order over an engine's drivers."""

    def __init__(self, tail_view: TailView, config: RailsConfig) -> None:
        self.tail_view = tail_view
        self.config = config
        self.refreshes = 0
        #: Most recent ordering decision, for reports: nic → bucket.
        self.last_buckets: dict[str, str] = {}
        self._calls = 0
        self._cached: list["Driver"] | None = None
        self._cached_ids: tuple[int, ...] = ()

    def order(self, drivers: Sequence["Driver"]) -> Sequence["Driver"]:
        """The driver service order for one pump pass."""
        ids = tuple(id(d) for d in drivers)
        if (
            self._cached is None
            or ids != self._cached_ids
            or self._calls >= self.config.refresh_every
        ):
            self._cached = self._compute(list(drivers))
            self._cached_ids = ids
            self._calls = 0
            self.refreshes += 1
        self._calls += 1
        return self._cached

    def _compute(self, drivers: list["Driver"]) -> list["Driver"]:
        config = self.config
        view = self.tail_view
        within: list[tuple[float, int, "Driver"]] = []
        unknown: list["Driver"] = []
        over: list[tuple[float, int, "Driver"]] = []
        buckets: dict[str, str] = {}
        for index, driver in enumerate(drivers):
            nic = driver.nic.name
            stats = view.rail(nic)
            if stats is None or stats.count < config.min_samples:
                unknown.append(driver)
                buckets[nic] = "unmeasured"
            elif stats.p99_us <= config.p99_budget_us:
                within.append((stats.p99_us, index, driver))
                buckets[nic] = "within"
            else:
                over.append((stats.p99_us, index, driver))
                buckets[nic] = "over"
        self.last_buckets = buckets
        if not over:
            if not within:
                return drivers  # nothing measured: keep the original order
            within.sort()
            return [d for _, _, d in within] + unknown
        if within:
            within.sort()
            over.sort()
            return [d for _, _, d in within] + unknown + [d for _, _, d in over]
        # Every measured rail is over budget: fall back on SLO burn.
        # A burning (or absent) SLO justifies least-bad-first emergency
        # ordering; a healthy SLO keeps the original order.
        if self._slo_burning():
            over.sort()
            return unknown + [d for _, _, d in over]
        return drivers

    def _slo_burning(self) -> bool:
        objectives = self.tail_view.objectives
        if not objectives:
            return True
        statuses = evaluate_slo(self.tail_view.registry, objectives)
        return any(s.worst_burn >= 1.0 for s in statuses)

    def summary(self) -> dict:
        """JSON-able state (CLI reports and the ``/tuner`` endpoint)."""
        return {
            "p99_budget_us": self.config.p99_budget_us,
            "refreshes": self.refreshes,
            "buckets": dict(self.last_buckets),
            "order": (
                [d.nic.name for d in self._cached]
                if self._cached is not None
                else None
            ),
        }
