"""Validated shape of the scenario ``"tuner"`` block.

Same contract as the ``"faults"`` and ``"observability"`` blocks:
unknown keys anywhere are rejected with
:class:`~repro.util.errors.ConfigurationError` naming the bad key — a
typo'd knob silently ignored would invalidate the run it was meant to
tune.  The block is strict and optional::

    "tuner": {
      "enabled": true,            # false = parse but install nothing
      "min_dwell": 8,             # decisions before a regime is stable
      "drift_window": 3,          # opposite observations before a flip
      "deep_backlog": 8,          # regime threshold (matches auto)
      "tail_drift_factor": 4.0,   # p99 blow-up invalidating specializations
      "sweep": {                  # online parameter sweeps (optional)
        "mode": "epsilon",        # or "halving"
        "epsilon": 0.1,
        "trial_decisions": 64,
        "windows": [8, 16, 32],   # lookahead_window arms
        "budgets": [8, 16, 32],   # search_budget arms
        "seed": 0
      },
      "rails": {                  # tail-acting rail selection (optional)
        "p99_budget_us": 500.0,
        "min_samples": 32,
        "refresh_every": 32
      }
    }
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.util.errors import ConfigurationError

__all__ = ["TunerConfig", "SweepConfig", "RailsConfig", "SWEEP_MODES"]

#: Valid values of :attr:`SweepConfig.mode`.
SWEEP_MODES = ("epsilon", "halving")

_TUNER_KEYS = frozenset(
    {
        "enabled",
        "min_dwell",
        "drift_window",
        "deep_backlog",
        "tail_drift_factor",
        "sweep",
        "rails",
    }
)
_SWEEP_KEYS = frozenset(
    {"mode", "epsilon", "trial_decisions", "windows", "budgets", "seed"}
)
_RAILS_KEYS = frozenset({"p99_budget_us", "min_samples", "refresh_every"})


def _reject_unknown(spec: Mapping[str, Any], known: frozenset, where: str) -> None:
    for key in spec:
        if key not in known:
            raise ConfigurationError(
                f"unknown {where} key {key!r} (known: {sorted(known)})"
            )


@dataclass(frozen=True, slots=True)
class SweepConfig:
    """Online sweep of lookahead window and rearrangement budget.

    Parameters
    ----------
    mode:
        ``"epsilon"`` — epsilon-greedy bandit over the arm grid;
        ``"halving"`` — successive halving (each round keeps the better
        half of the surviving arms, until one remains).
    epsilon:
        Exploration probability once every arm has one trial
        (epsilon-greedy mode only).
    trial_decisions:
        Scheduling decisions one arm is measured over before the
        controller moves on.
    windows / budgets:
        Candidate values of ``EngineConfig.lookahead_window`` and
        ``EngineConfig.search_budget``; the arm grid is their cross
        product.
    seed:
        Seed of the controller's private RNG (exploration is the only
        random choice — trials themselves are deterministic).
    """

    mode: str = "epsilon"
    epsilon: float = 0.1
    trial_decisions: int = 64
    windows: tuple[int, ...] = (8, 16, 32)
    budgets: tuple[int, ...] = (8, 16, 32)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in SWEEP_MODES:
            raise ConfigurationError(
                f"sweep mode must be one of {SWEEP_MODES}, got {self.mode!r}"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError(
                f"sweep epsilon must be in [0, 1], got {self.epsilon}"
            )
        if self.trial_decisions < 1:
            raise ConfigurationError(
                f"trial_decisions must be >= 1, got {self.trial_decisions}"
            )
        if not self.windows or any(w < 1 for w in self.windows):
            raise ConfigurationError(f"sweep windows must be >= 1, got {self.windows}")
        if not self.budgets or any(b < 1 for b in self.budgets):
            raise ConfigurationError(f"sweep budgets must be >= 1, got {self.budgets}")

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "SweepConfig":
        _reject_unknown(spec, _SWEEP_KEYS, "tuner sweep")
        kwargs: dict[str, Any] = {}
        for key in ("mode", "epsilon", "trial_decisions", "seed"):
            if key in spec:
                kwargs[key] = spec[key]
        for key in ("windows", "budgets"):
            if key in spec:
                kwargs[key] = tuple(spec[key])
        return cls(**kwargs)


@dataclass(frozen=True, slots=True)
class RailsConfig:
    """Tail-acting rail selection: prefer rails within the p99 budget.

    Parameters
    ----------
    p99_budget_us:
        A rail whose service-time sketch p99 is at or below this is
        "within budget" and preferred (best p99 first); rails above it
        are tried last.
    min_samples:
        Sketch observations a rail needs before its tail is trusted;
        rails with fewer keep their original position.
    refresh_every:
        Scheduling passes between re-reads of the tail view (ordering
        is cached in between — quantile queries are not free).
    """

    p99_budget_us: float = 1000.0
    min_samples: int = 32
    refresh_every: int = 32

    def __post_init__(self) -> None:
        if self.p99_budget_us <= 0:
            raise ConfigurationError(
                f"p99_budget_us must be > 0, got {self.p99_budget_us}"
            )
        if self.min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1, got {self.min_samples}"
            )
        if self.refresh_every < 1:
            raise ConfigurationError(
                f"refresh_every must be >= 1, got {self.refresh_every}"
            )

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "RailsConfig":
        _reject_unknown(spec, _RAILS_KEYS, "tuner rails")
        return cls(**dict(spec))


@dataclass(frozen=True, slots=True)
class TunerConfig:
    """Validated shape of the scenario ``"tuner"`` block.

    Parameters
    ----------
    enabled:
        ``False`` parses the block but installs nothing — dispatch stays
        byte-identical to a tuner-less run (the escape hatch).
    min_dwell:
        Consecutive decisions the committed regime must hold before it
        is declared *stable* (specialization only happens then).
    drift_window:
        Consecutive decisions observing the opposite regime before the
        tracker commits a flip (hysteresis against thrash).
    deep_backlog:
        Pending-entry threshold separating the sparse and deep regimes
        (matches :class:`~repro.core.strategies.auto.AutoStrategy`).
    tail_drift_factor:
        Invalidate specializations when the worst per-rail p99 exceeds
        its value at install time by this factor (needs a tail view;
        ``None`` disables the tail drift test).
    sweep / rails:
        Optional sub-controllers (see :class:`SweepConfig`,
        :class:`RailsConfig`); ``None`` leaves them off.
    """

    enabled: bool = True
    min_dwell: int = 8
    drift_window: int = 3
    deep_backlog: int = 8
    tail_drift_factor: float | None = 4.0
    sweep: SweepConfig | None = None
    rails: RailsConfig | None = None

    def __post_init__(self) -> None:
        if self.min_dwell < 1:
            raise ConfigurationError(f"min_dwell must be >= 1, got {self.min_dwell}")
        if self.drift_window < 1:
            raise ConfigurationError(
                f"drift_window must be >= 1, got {self.drift_window}"
            )
        if self.deep_backlog < 1:
            raise ConfigurationError(
                f"deep_backlog must be >= 1, got {self.deep_backlog}"
            )
        if self.tail_drift_factor is not None and self.tail_drift_factor <= 1.0:
            raise ConfigurationError(
                f"tail_drift_factor must be > 1 or None, got {self.tail_drift_factor}"
            )

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any]) -> "TunerConfig":
        """Build from a scenario mapping, rejecting unknown keys."""
        _reject_unknown(spec, _TUNER_KEYS, "tuner")
        kwargs: dict[str, Any] = {}
        for key in ("enabled", "min_dwell", "drift_window", "deep_backlog"):
            if key in spec:
                kwargs[key] = spec[key]
        if "tail_drift_factor" in spec:
            kwargs["tail_drift_factor"] = spec["tail_drift_factor"]
        sweep_spec = spec.get("sweep")
        if sweep_spec is not None:
            kwargs["sweep"] = SweepConfig.from_spec(sweep_spec)
        rails_spec = spec.get("rails")
        if rails_spec is not None:
            kwargs["rails"] = RailsConfig.from_spec(rails_spec)
        return cls(**kwargs)
