"""Bridge between the asyncio clock and the engine's activation discipline.

The optimizing engine, the workload processes, and every component in
between talk to a :class:`~repro.sim.engine.Simulator`-shaped object:
``now``, ``schedule``, ``at``, ``cancel``, ``tracer``.  :class:`LiveClock`
satisfies that interface over a running asyncio event loop, so the exact
same engine/strategy/middleware code that runs in virtual time runs in
wall-clock time — hold timers become ``call_later`` timers, process
think-times become real sleeps, and trace events carry real timestamps.

Two deliberate departures from a naive ``time.time()`` passthrough:

* **Shared epoch.**  Every peer process of a live run measures time as
  ``wall_clock - epoch`` with the *coordinator's* epoch, so timestamps
  in per-peer traces and message records are directly comparable (the
  sender stamps ``submit_time``, the receiver stamps ``complete_time``).
* **Sticky now.**  ``now`` only advances at event-loop entry points
  (:meth:`refresh` is called when a timer fires, a socket drains, or
  bytes arrive) — within one synchronous callback chain the clock is
  frozen, exactly like the discrete-event kernel.  This preserves
  engine invariants that compare freshly computed deadlines against
  ``now`` (e.g. a Nagle hold armed for ``now + delay`` can never be
  "already in the past" because Python took a microsecond to get
  there).
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.util.errors import SimulationError
from repro.util.tracing import NullTracer, Tracer

__all__ = ["LiveEvent", "LiveClock"]


class LiveEvent:
    """Handle for one scheduled callback (duck-types ``sim.event.Event``)."""

    __slots__ = ("time", "cancelled", "fired", "_handle")

    def __init__(self, when: float) -> None:
        self.time = when
        self.cancelled = False
        self.fired = False
        self._handle: Any = None

    def cancel(self) -> None:
        """Mark cancelled and release the underlying loop timer."""
        self.cancelled = True
        if self._handle is not None:
            self._handle.cancel()


class LiveClock:
    """Wall-clock ``Simulator`` facade over an asyncio event loop.

    Parameters
    ----------
    loop:
        The running asyncio event loop that hosts the timers.
    epoch:
        Wall-clock origin (``time.time()`` units) shared by every peer
        of a run; ``now`` is seconds since this origin.
    time_scale:
        Real seconds per virtual second.  ``1.0`` (default) runs in real
        time; ``10.0`` stretches every engine delay tenfold (useful when
        eyeballing microsecond-scale hold timers).
    tracer:
        Shared tracer; defaults to a :class:`NullTracer` fast path.
    """

    def __init__(
        self,
        loop,
        epoch: float,
        time_scale: float = 1.0,
        tracer: Tracer | None = None,
    ) -> None:
        if time_scale <= 0:
            raise SimulationError(f"time_scale must be > 0, got {time_scale}")
        self._loop = loop
        self._epoch = epoch
        self._scale = time_scale
        self._now = max(0.0, (time.time() - epoch) / time_scale)
        self._pending = 0
        self.tracer: Tracer = tracer if tracer is not None else NullTracer()

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Seconds since the run epoch, frozen within one callback chain."""
        return self._now

    def refresh(self) -> float:
        """Advance ``now`` to the current wall clock (event-loop entry).

        Monotonic by construction: a wall-clock step backwards (NTP
        adjustment) never rewinds the run clock.
        """
        wall = (time.time() - self._epoch) / self._scale
        if wall > self._now:
            self._now = wall
        return self._now

    @property
    def time_scale(self) -> float:
        """Real seconds per virtual second (see constructor)."""
        return self._scale

    @property
    def pending_timers(self) -> int:
        """Scheduled callbacks that have neither fired nor been cancelled.

        The live quiescence detector uses this the way the simulated
        runner uses an empty event queue: zero pending timers means no
        locally originated future activity.
        """
        return self._pending

    # ------------------------------------------------------------------
    # scheduling (the Simulator interface)
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> LiveEvent:
        """Run ``fn(*args)`` ``delay`` virtual seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._arm(self._now + delay, fn, args)

    def at(self, when: float, fn: Callable[..., Any], *args: Any) -> LiveEvent:
        """Run ``fn(*args)`` at an absolute run time ``>= now``."""
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at t={when} which is before now={self._now}"
            )
        return self._arm(when, fn, args)

    def cancel(self, event: LiveEvent) -> None:
        """Cancel a pending event (no-op if already cancelled or fired)."""
        if not event.cancelled and not event.fired:
            event.cancel()
            self._pending -= 1

    def _arm(self, when: float, fn: Callable[..., Any], args: tuple) -> LiveEvent:
        event = LiveEvent(when)
        real_delay = max(0.0, (when - self.refresh()) * self._scale)
        event._handle = self._loop.call_later(real_delay, self._fire, event, fn, args)
        self._pending += 1
        return event

    def _fire(self, event: LiveEvent, fn: Callable[..., Any], args: tuple) -> None:
        if event.cancelled:  # pragma: no cover - call_later already cancelled
            return
        event.fired = True
        self._pending -= 1
        self.refresh()
        # The scheduled instant is the *logical* time of the callback;
        # never let a coarse wall clock report an earlier one.
        if event.time > self._now:
            self._now = event.time
        fn(*args)
