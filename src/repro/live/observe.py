"""Live-peer observability: the full plane inside one peer process.

A live peer used to carry an ad-hoc ``ListSink`` + ``MetricsCollector``
pair; this module gives it the same :class:`~repro.obs.plane.ObservabilityPlane`
a simulated cluster gets, adapted to the two ways a peer differs:

* **There is no Cluster object.**  :class:`PeerClusterAdapter` presents
  one peer's stack (clock, engine, node, reassembler) through the duck
  type ``ObservabilityPlane.install`` and the sampler's snapshot code
  already consume — ``sim``, ``engines``, ``fabric.nodes``,
  ``transport``, ``reassemblers``.
* **Time is wall-clock and quiescence is watched.**  The base
  :class:`~repro.obs.sampler.ObservabilitySampler` keeps itself alive by
  rescheduling on the simulator queue; on a :class:`~repro.live.loop.LiveClock`
  that would hold ``pending_timers`` above zero forever and the peer
  would never look quiet.  :class:`LiveSampler` therefore drives the
  same ``sample_once`` core from raw ``loop.call_later`` timers, which
  the quiescence predicate deliberately does not see.

:class:`SpoolSink` is the streaming half: a bounded buffer of events
since the last coordinator ``FLUSH``, drained into the control protocol
every poll so no cap ever truncates the run's trace — the peer's ring
buffer stays as the crash flight recorder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.sampler import ObservabilitySampler
from repro.util.errors import ConfigurationError
from repro.util.tracing import TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.live.loop import LiveClock

__all__ = ["SpoolSink", "PeerClusterAdapter", "LiveSampler"]

#: Events the spool holds between coordinator flushes.  At the
#: coordinator's ~20 ms poll cadence this is far beyond any realistic
#: emit rate; hitting it means the coordinator stopped draining, and the
#: spool degrades to counting drops rather than growing without bound.
SPOOL_CAPACITY = 250_000


class SpoolSink:
    """Bounded buffer of trace events awaiting the next coordinator flush."""

    def __init__(self, capacity: int = SPOOL_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigurationError(f"spool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.events: list[TraceEvent] = []
        self.seen = 0
        self.dropped = 0

    def __call__(self, event: TraceEvent) -> None:
        self.seen += 1
        if len(self.events) >= self.capacity:
            self.dropped += 1
            return
        self.events.append(event)

    def drain(self) -> list[TraceEvent]:
        """Hand over everything buffered; the spool restarts empty."""
        drained = self.events
        self.events = []
        return drained

    def __len__(self) -> int:
        return len(self.events)


class _Fabric:
    """The one attribute of ``cluster.fabric`` the obs plane reads."""

    def __init__(self, node) -> None:
        self.nodes = [node]


class PeerClusterAdapter:
    """One live peer's stack shaped like a ``Cluster`` for the obs plane.

    Only the attributes :meth:`ObservabilityPlane.install`,
    :meth:`ObservabilityPlane.finalize` and the sampler snapshot read
    are provided; anything else staying absent is a feature — new plane
    code reaching deeper will fail loudly here instead of silently
    observing half a peer.
    """

    def __init__(
        self, clock: "LiveClock", engine, node, reassembler, transport=None
    ) -> None:
        self.sim = clock
        self.engines = {engine.node_name: engine}
        self.fabric = _Fabric(node)
        #: The peer's socket hub when chaos/reliability is active — it
        #: exposes the same ``stats.retransmits`` / ``in_flight`` surface
        #: the simulated :class:`~repro.network.reliable.ReliableTransport`
        #: does.  Without chaos the plain TCP/UDS stream *is* the
        #: reliability layer and the gauges read 0 by design.
        self.transport = transport
        self.reassemblers = {node.name: reassembler}


class LiveSampler(ObservabilitySampler):
    """Wall-clock cadence for the shared ``sample_once`` core.

    Timers go straight to ``loop.call_later`` — never ``clock.schedule``
    — so the peer's quiescence predicate (``pending_timers == 0``) is
    not pinned high by the sampler's own heartbeat.  The interval is in
    virtual seconds, scaled to real seconds by the clock's time scale,
    matching what the same scenario block means in a simulated run.
    """

    def __init__(
        self,
        adapter: PeerClusterAdapter,
        interval: float,
        *,
        registry=None,
        source: str = "obs:sampler",
        tail_view=None,
    ) -> None:
        super().__init__(
            adapter,
            interval,
            registry=registry,
            source=source,
            autostart=False,
            tail_view=tail_view,
        )
        self._clock = adapter.sim
        self._handle: Any = None
        self._stopped = False

    def start(self) -> "LiveSampler":
        """Begin ticking (first sample after one interval); returns self."""
        if self._handle is None and not self._stopped:
            self._arm()
        return self

    def _arm(self) -> None:
        real_delay = self.interval * self._clock.time_scale
        self._handle = self._clock._loop.call_later(real_delay, self._wall_tick)

    def _wall_tick(self) -> None:
        if self._stopped:
            return
        self._clock.refresh()
        self.sample_once()
        self._arm()

    def stop(self) -> None:
        """Stop ticking (idempotent); the collected series stay readable."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
