"""Peer liveness: heartbeats, failure detection, reconnect backoff.

Three small, separately testable pieces:

* :class:`Backoff` — exponential redial delays with seeded jitter, so a
  flapping connection never turns into a synchronized reconnect storm
  and tests still get reproducible delay sequences;
* :class:`HeartbeatLedger` — peer-side per-neighbor last-seen tracking
  fed by ``hb`` transport frames; a neighbor is *stale* once its
  silence exceeds the configured miss budget;
* :class:`PeerWatchdog` — coordinator-side failure detector combining
  process exit, control round-trip failures, and peer-reported
  heartbeat gaps into :class:`DeadPeer` declarations with
  time-to-detect accounting.

Detection and reaction are deliberately split across processes: peers
only *observe* (heartbeat ages ride the STATUS reply), the coordinator
*declares* (it alone sees process exit codes and the whole mesh), and
the surviving peers *react* when the coordinator broadcasts
``peer_down`` — a single authority, so two peers can never disagree
about who is dead.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.util.errors import ConfigurationError

__all__ = ["Backoff", "HeartbeatLedger", "DeadPeer", "PeerWatchdog"]


class Backoff:
    """Exponential backoff with seeded multiplicative jitter.

    ``next()`` yields ``base * factor**attempt`` clamped to ``maximum``,
    scaled by a uniform factor in ``[1 - jitter, 1 + jitter]``.
    ``reset()`` re-arms after a successful connection.
    """

    __slots__ = ("base", "factor", "maximum", "jitter", "attempt", "_rng")

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        maximum: float = 1.0,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        if base <= 0 or factor < 1.0 or maximum < base or not 0 <= jitter < 1:
            raise ConfigurationError(
                f"invalid backoff (base={base}, factor={factor}, "
                f"maximum={maximum}, jitter={jitter})"
            )
        self.base = base
        self.factor = factor
        self.maximum = maximum
        self.jitter = jitter
        self.attempt = 0
        self._rng = random.Random(seed)

    def next(self) -> float:
        """Delay before the next attempt (advances the attempt count)."""
        delay = min(self.base * self.factor**self.attempt, self.maximum)
        self.attempt += 1
        scale = 1.0 + self.jitter * self._rng.uniform(-1.0, 1.0)
        return max(delay * scale, 1e-3)

    def reset(self) -> None:
        """Call after a successful attempt."""
        self.attempt = 0


class HeartbeatLedger:
    """Per-neighbor last-seen times on one peer.

    Any traffic counts as life — the hub records data and ACK arrivals
    too, so a busy link never needs dedicated beacons to stay fresh.
    """

    __slots__ = ("dead_after", "_last_seen")

    def __init__(self, dead_after: float) -> None:
        self.dead_after = dead_after
        self._last_seen: dict[str, float] = {}

    def record(self, node: str, now: float) -> None:
        """Note contact with ``node`` — any traffic counts as life."""
        self._last_seen[node] = now

    def age(self, node: str, now: float) -> float | None:
        """Seconds since last contact, or None if never heard from."""
        seen = self._last_seen.get(node)
        return None if seen is None else max(now - seen, 0.0)

    def stale(self, node: str, now: float) -> bool:
        """True when ``node`` has been silent for over ``dead_after``."""
        age = self.age(node, now)
        return age is not None and age > self.dead_after

    def ages(self, now: float) -> dict[str, float]:
        """Snapshot of every neighbor's silence, for STATUS replies."""
        return {node: max(now - seen, 0.0) for node, seen in self._last_seen.items()}


@dataclass(frozen=True, slots=True)
class DeadPeer:
    """One declared peer death."""

    rank: int
    node: str
    reason: str  #: "exit" | "control" | "heartbeat"
    detected_at: float
    last_seen: float

    @property
    def time_to_detect(self) -> float:
        """Silence-to-declaration latency (the metric the watchdog owns)."""
        return max(self.detected_at - self.last_seen, 0.0)


@dataclass(slots=True)
class _PeerHealth:
    last_ok: float
    exit_code: int | None = None
    control_failures: int = 0
    hb_age: float = 0.0


class PeerWatchdog:
    """Coordinator-side failure detector over the whole mesh.

    Fed from the poll loop: :meth:`beat` on every successful control
    round-trip, :meth:`note_exit` when a peer process is reaped,
    :meth:`note_control_failure` when a request times out or errors,
    :meth:`note_heartbeat_age` with the worst peer-reported silence for
    a rank.  :meth:`check` returns *newly* dead peers exactly once.
    """

    def __init__(
        self,
        nodes: Mapping[int, str],
        *,
        dead_after: float,
        control_failure_budget: int = 2,
        clock=time.monotonic,
    ) -> None:
        if dead_after <= 0:
            raise ConfigurationError(f"dead_after must be > 0, got {dead_after}")
        self.dead_after = dead_after
        self.control_failure_budget = control_failure_budget
        self._clock = clock
        now = clock()
        self._health: dict[int, _PeerHealth] = {
            rank: _PeerHealth(last_ok=now) for rank in nodes
        }
        self._nodes = dict(nodes)
        self._dead: dict[int, DeadPeer] = {}

    # ------------------------------------------------------------------
    # observations
    # ------------------------------------------------------------------
    def beat(self, rank: int) -> None:
        """Record a successful control round-trip; clears failures."""
        health = self._health.get(rank)
        if health is not None and rank not in self._dead:
            health.last_ok = self._clock()
            health.control_failures = 0

    def note_exit(self, rank: int, code: int | None) -> None:
        """Record that the peer process was reaped (None → -1)."""
        health = self._health.get(rank)
        if health is not None:
            health.exit_code = code if code is not None else -1

    def note_control_failure(self, rank: int) -> None:
        """Count one failed control request against the rank's budget."""
        health = self._health.get(rank)
        if health is not None:
            health.control_failures += 1

    def note_heartbeat_age(self, rank: int, age: float) -> None:
        """Worst silence any *survivor* reports about this rank's node."""
        health = self._health.get(rank)
        if health is not None:
            health.hb_age = age

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def check(self) -> list[DeadPeer]:
        """Declare and return peers that died since the last call."""
        now = self._clock()
        fresh: list[DeadPeer] = []
        for rank, health in self._health.items():
            if rank in self._dead:
                continue
            reason = None
            if health.exit_code is not None:
                reason = "exit"
            elif health.control_failures >= self.control_failure_budget:
                reason = "control"
            elif (
                health.hb_age > self.dead_after
                and now - health.last_ok > self.dead_after
            ):
                # Heartbeat gossip alone is not enough: the coordinator
                # must also have lost direct contact, or a one-sided
                # socket failure would kill a healthy peer.
                reason = "heartbeat"
            if reason is not None:
                dead = DeadPeer(
                    rank=rank,
                    node=self._nodes.get(rank, f"rank{rank}"),
                    reason=reason,
                    detected_at=now,
                    last_seen=health.last_ok,
                )
                self._dead[rank] = dead
                fresh.append(dead)
        return fresh

    @property
    def dead(self) -> dict[int, DeadPeer]:
        """All declared deaths so far (rank → declaration)."""
        return dict(self._dead)

    def alive(self) -> list[int]:
        """Ranks not (yet) declared dead, in rank order."""
        return [rank for rank in self._health if rank not in self._dead]

    def summary(self) -> dict[str, Any]:
        """JSON-ready view for reports and the /peers endpoint."""
        return {
            "dead": [
                {
                    "rank": d.rank,
                    "node": d.node,
                    "reason": d.reason,
                    "time_to_detect": d.time_to_detect,
                }
                for d in self._dead.values()
            ],
            "alive": self.alive(),
        }
