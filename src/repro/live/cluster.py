"""Coordinator: spawn N live peers, run a scenario, merge the report.

:func:`run_live_scenario` is the live counterpart of
:func:`repro.runtime.scenario.run_scenario`: same scenario mapping in, a
real :class:`~repro.runtime.metrics.SessionReport` out — except the
engines run in separate OS processes connected by a Unix-domain-socket
(or TCP loopback) mesh, and "the run is over" is detected by
quiescence + counter agreement instead of an empty event queue.

Control flow (JSON lines over each peer's stdin/stdout)::

    CONFIG  -> READY      every peer binds its server socket
    MESH    -> MESH_OK    peers interconnect (rank i dials ranks < i)
    START   -> STARTED    apps installed; traffic begins
    STATUS  (poll)        until: all quiet, Σsubmitted == Σdone_received
                          == Σdone_sent, stable across two polls
    FLUSH   (poll)        with observability on: drain each peer's trace
                          spool + registry snapshot every poll
    PEER_DOWN (broadcast) chaos runs only: a peer declared dead by the
                          watchdog is announced to every survivor
    STOP    -> REPORT     per-peer records/counters; peers exit

With a scenario ``"faults"`` block the run becomes a *chaos run*: wire
faults are injected peer-side under a reliability envelope, and a
:class:`~repro.live.liveness.PeerWatchdog` turns peer death (process
exit, control-channel silence, heartbeat gossip) into graceful
degradation — the dead peer's flows are abandoned cluster-wide, the
counter-agreement check nets out its traffic (per-peer DONE breakdowns
make both sides of the equation subtractable), and the merged report is
marked ``degraded`` with ``lost_messages`` accounting.  Without faults,
any peer death stays an immediate hard error.

The merged report is assembled from receiver-side message records
(each delivered message is recorded exactly once cluster-wide, at its
destination peer); submit/complete timestamps are comparable across
peers because every clock shares the coordinator's epoch.

Beyond the report, the coordinator is the *merge point* of the
distributed observability plane (docs/ARCHITECTURE.md §13): it brackets
every control round-trip to estimate per-peer clock offsets, aligns and
merges the streamed trace fragments into one multi-process trace
(:mod:`repro.obs.merge`), folds the per-peer metric registries into a
cluster registry with a ``peer`` label, and — with ``serve`` — exposes
``/metrics`` and ``/status`` over HTTP while the run is in flight.
"""

from __future__ import annotations

import json
import os
import queue
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.live.chaos import ChaosConfig
from repro.live.liveness import DeadPeer, PeerWatchdog
from repro.network.virtual import TrafficClass
from repro.obs.causal import attribute_events, export_blame
from repro.obs.merge import (
    MergedTrace,
    OffsetSample,
    aggregate_registries,
    align_events,
    correct_edge_sketches,
    estimate_offsets,
    extract_crossings,
    merge_registries,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tails import (
    SLObjective,
    TailView,
    parse_slo,
    pooled_message_sketch,
)
from repro.obs.serve import ObsHTTPServer, parse_serve_address
from repro.runtime.metrics import LatencySummary, MessageRecord, SessionReport
from repro.util.errors import ConfigurationError, TransportError
from repro.util.tracing import TraceEvent, event_to_dict

__all__ = ["LiveRunResult", "run_live_scenario"]

_POLL_INTERVAL = 0.02


@dataclass(slots=True)
class LiveRunResult:
    """Everything a live run produced beyond the merged report."""

    report: SessionReport
    records: list[MessageRecord]
    peer_reports: list[dict[str, Any]]
    #: Aligned, merged trace events as JSON-able dicts (time-sorted).
    trace_events: list[dict[str, Any]] = field(default_factory=list)
    rtts: list[float] = field(default_factory=list)
    #: Same events as :class:`~repro.util.tracing.TraceEvent` objects.
    aligned_events: list[TraceEvent] = field(default_factory=list)
    #: Per-peer clock offsets applied during the merge (node -> seconds).
    offsets: dict[str, float] = field(default_factory=dict)
    #: Correlated wire crossings found / clamped during alignment.
    crossings_matched: int = 0
    crossings_clamped: int = 0
    #: Cluster-level registry (every peer's metrics, ``peer``-labelled);
    #: None when the run carried no observability.
    cluster_registry: MetricsRegistry | None = None
    #: Offset-corrected cluster tail view (``TailView.snapshot()`` shape:
    #: per-edge/per-rail/per-node p50..p999 plus SLO burn rates); empty
    #: when the run carried no observability.
    tails: dict[str, Any] = field(default_factory=dict)
    #: Pooled ``repro_tuner_*`` counters (same shape ``GET /tuner``
    #: serves mid-run); ``enabled: false`` when no peer ran a tuner.
    tuner: dict[str, Any] = field(default_factory=dict)
    #: Peers declared dead mid-run (empty on a clean run).  When
    #: non-empty, ``report.degraded`` is True and the report merges only
    #: the survivors' views.
    dead_peers: list[DeadPeer] = field(default_factory=list)

    @property
    def bytes_verified(self) -> int:
        """Payload bytes that arrived byte-identical to the pattern."""
        return sum(p["transport"]["bytes_verified"] for p in self.peer_reports)

    @property
    def corrupt_slices(self) -> int:
        return sum(p["transport"]["corrupt_slices"] for p in self.peer_reports)


class _ObsState:
    """Thread-safe snapshot of the in-flight run the HTTP server reads.

    The coordinator's poll loop owns the write side; the
    :class:`~repro.obs.serve.ObsHTTPServer` thread calls
    :meth:`metrics_text`/:meth:`status` whenever a client asks.
    """

    def __init__(
        self,
        scenario_name: str,
        objectives: tuple[SLObjective, ...] = (),
    ) -> None:
        self._lock = threading.Lock()
        self._scenario = scenario_name
        self._objectives = objectives
        self._started = time.time()
        self._metrics_by_peer: dict[str, Mapping[str, Any]] = {}
        self._status: dict[str, Any] = {"phase": "starting"}
        self._peers: dict[str, Any] = {"dead": [], "alive": []}
        self._events_by_peer: dict[str, list[TraceEvent]] = {}
        self._offset_samples: list[OffsetSample] = []
        self._why_cache: tuple[int, dict[str, Any]] | None = None

    def update_metrics(self, node: str, snapshot: Mapping[str, Any]) -> None:
        with self._lock:
            self._metrics_by_peer[node] = snapshot

    def update_status(self, **fields: Any) -> None:
        with self._lock:
            self._status.update(fields)

    def update_peers(self, summary: Mapping[str, Any]) -> None:
        with self._lock:
            self._peers = dict(summary)

    def update_events(
        self,
        events_by_peer: Mapping[str, list[TraceEvent]],
        samples: list[OffsetSample],
    ) -> None:
        """Snapshot the streamed-so-far trace for the ``/why`` route.

        Shallow copies (events are immutable) taken under the lock so
        the HTTP thread never observes the poll loop mid-append.
        """
        with self._lock:
            self._events_by_peer = {
                node: list(events) for node, events in events_by_peer.items()
            }
            self._offset_samples = list(samples)

    def metrics_text(self) -> str:
        with self._lock:
            per_peer = dict(self._metrics_by_peer)
        return merge_registries(per_peer).to_prometheus()

    def tails(self) -> dict[str, Any]:
        """In-flight cluster tail view for ``GET /tails``.

        Aggregates the latest per-peer sketch snapshots (series never
        collide across peers — edge sketches live at the receiver, rail
        and message sketches carry the owning node in their labels).
        Mid-run edge latencies are *raw-clock* differences; the exact
        offset-corrected view is the post-run :attr:`LiveRunResult.tails`.
        """
        with self._lock:
            per_peer = dict(self._metrics_by_peer)
        view = TailView(
            aggregate_registries(per_peer.values()), self._objectives
        )
        payload = view.snapshot()
        payload["note"] = "mid-run edge latencies are raw-clock (uncorrected)"
        return payload

    def status(self) -> dict[str, Any]:
        with self._lock:
            out = dict(self._status)
        out["scenario"] = self._scenario
        out["uptime_s"] = time.time() - self._started
        return out

    def peers(self) -> dict[str, Any]:
        with self._lock:
            return dict(self._peers)

    def tuner(self) -> dict[str, Any]:
        """In-flight online-adaptation view for ``GET /tuner``.

        Per-peer ``repro_tuner_*`` counters from the latest FLUSH
        registry snapshots, plus cluster totals.  A scenario without a
        tuner block reports ``enabled: false`` and no nodes — the
        counters only exist when a peer installed the tuner.
        """
        with self._lock:
            per_peer = dict(self._metrics_by_peer)
        return pool_tuner_counters(per_peer)

    def why(self) -> dict[str, Any]:
        """In-flight causal-attribution view for ``GET /why``.

        Attributes the events flushed so far, aligned with the clock
        offsets estimable at this point of the run; the exact post-run
        view is ``LiveRunResult.tails["blame"]``.  Cached by total
        event count, so polling between flushes costs nothing.
        """
        with self._lock:
            per_peer = {
                node: list(events)
                for node, events in self._events_by_peer.items()
            }
            samples = list(self._offset_samples)
        total = sum(len(events) for events in per_peer.values())
        cached = self._why_cache
        if cached is not None and cached[0] == total:
            return cached[1]
        crossings = extract_crossings(per_peer)
        offsets = estimate_offsets(samples, crossings, peers=per_peer.keys())
        merged = align_events(per_peer, offsets)
        report = attribute_events(merged.events)
        payload = {
            "note": "mid-run view over flushed events; exact post-run "
            "blame is in the run result",
            "messages": len(report.messages),
            "incomplete": report.incomplete,
            "edges": report.edges(),
            "slowest": [b.to_dict() for b in report.slowest(5)],
        }
        self._why_cache = (total, payload)
        return payload


def pool_tuner_counters(
    per_peer: Mapping[str, Mapping[str, Any]],
) -> dict[str, Any]:
    """Fold every peer's ``repro_tuner_*`` counters into one summary.

    Serves both the mid-run ``/tuner`` endpoint and the post-run
    :attr:`LiveRunResult.tuner` field.  A run without a tuner block has
    no such counters, so the summary reports ``enabled: false``.
    """
    prefix = "repro_tuner_"
    nodes: dict[str, dict[str, float]] = {}
    for snapshot in per_peer.values():
        for metric in snapshot.get("metrics", ()):
            name = metric.get("name", "")
            if not name.startswith(prefix):
                continue
            labels = dict(metric.get("labels") or ())
            node = labels.get("node", "?")
            short = name[len(prefix):]
            if short.endswith("_total"):
                short = short[: -len("_total")]
            nodes.setdefault(node, {})[short] = metric.get("value", 0)
    totals: dict[str, float] = {}
    for counters in nodes.values():
        for key, value in counters.items():
            totals[key] = totals.get(key, 0) + value
    decisions = totals.get("decisions", 0)
    return {
        "enabled": bool(nodes),
        "nodes": nodes,
        "totals": totals,
        "specialized_fraction": (
            totals.get("specialized", 0) / decisions if decisions else 0.0
        ),
    }


#: Upper bound on one control round-trip.  A healthy peer answers in
#: microseconds; a peer that takes longer than this is wedged (stuck
#: event loop, paging storm) and the caller — watchdog or fail-fast —
#: decides what that means.
_REQUEST_TIMEOUT = 5.0


class _Peer:
    """One spawned peer process + its line protocol, with timeouts.

    A daemon thread drains the peer's stdout into a queue so every
    control request can block *with a deadline* — a wedged or killed
    peer turns into a typed :class:`~repro.util.errors.TransportError`
    carrying its stderr tail, never an indefinite coordinator hang.
    """

    def __init__(self, rank: int, workdir: str, deadline: float) -> None:
        self.rank = rank
        self.deadline = deadline
        self.stderr_path = os.path.join(workdir, f"p{rank}.stderr")
        self._stderr_file = open(self.stderr_path, "wb")
        env = dict(os.environ)
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro.live.peer"],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=self._stderr_file,
            env=env,
            text=True,
        )
        self._lines: queue.Queue[str | None] = queue.Queue()
        self._reader = threading.Thread(target=self._drain_stdout, daemon=True)
        self._reader.start()

    def _drain_stdout(self) -> None:
        assert self.proc.stdout is not None
        for line in self.proc.stdout:
            self._lines.put(line)
        self._lines.put(None)  # EOF sentinel

    def request(
        self,
        msg: dict[str, Any],
        timeout: float | None = None,
        expect: str | None = None,
    ) -> dict[str, Any]:
        """Send one control message and block for its response.

        ``timeout`` bounds the wait (default :data:`_REQUEST_TIMEOUT`,
        further clamped to the run deadline).  ``expect`` names the
        reply type to wait for; replies of other types are discarded —
        that is what resynchronizes the channel after an earlier request
        timed out and its late reply is still queued.
        """
        if self.proc.poll() is not None:
            raise TransportError(
                f"peer {self.rank} exited early (rc={self.proc.returncode}): "
                f"{self.stderr_tail()}"
            )
        assert self.proc.stdin is not None
        try:
            self.proc.stdin.write(json.dumps(msg) + "\n")
            self.proc.stdin.flush()
        except (BrokenPipeError, OSError):
            raise TransportError(
                f"peer {self.rank} control channel broken "
                f"(rc={self.proc.poll()}): {self.stderr_tail()}"
            ) from None
        return self.read_reply(timeout=timeout, expect=expect)

    def read_reply(
        self, timeout: float | None = None, expect: str | None = None
    ) -> dict[str, Any]:
        """Block for the next control reply (optionally of one type)."""
        budget = _REQUEST_TIMEOUT if timeout is None else timeout
        wait_deadline = min(time.time() + budget, self.deadline + budget)
        while True:
            remaining = wait_deadline - time.time()
            if remaining <= 0:
                raise TransportError(
                    f"peer {self.rank} did not answer within {budget:.1f}s "
                    f"(rc={self.proc.poll()}): {self.stderr_tail()}"
                )
            try:
                line = self._lines.get(timeout=min(remaining, 0.5))
            except queue.Empty:
                if self.proc.poll() is not None and self._lines.empty():
                    raise TransportError(
                        f"peer {self.rank} exited "
                        f"(rc={self.proc.returncode}): {self.stderr_tail()}"
                    ) from None
                continue
            if line is None:
                raise TransportError(
                    f"peer {self.rank} closed its control channel "
                    f"(rc={self.proc.poll()}): {self.stderr_tail()}"
                )
            try:
                reply = json.loads(line)
            except json.JSONDecodeError:
                raise TransportError(
                    f"peer {self.rank} sent a malformed control line "
                    f"{line!r}: {self.stderr_tail()}"
                ) from None
            if reply.get("type") == "error":
                raise TransportError(
                    f"peer {self.rank} failed: {reply.get('error')}\n"
                    f"stderr: {self.stderr_tail()}"
                )
            if expect is not None and reply.get("type") != expect:
                continue  # stale reply from a timed-out earlier request
            return reply

    def stderr_tail(self, limit: int = 2000) -> str:
        self._stderr_file.flush()
        try:
            with open(self.stderr_path, "rb") as f:
                data = f.read()
            return data[-limit:].decode("utf-8", errors="replace")
        except OSError:
            return "<no stderr captured>"

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
        try:
            self.proc.wait(timeout=5)
        except subprocess.TimeoutExpired:  # pragma: no cover
            pass
        self._stderr_file.close()


def _merge_report(
    peer_reports: list[dict[str, Any]],
    *,
    degraded: bool = False,
    lost_messages: int = 0,
) -> tuple[SessionReport, list[MessageRecord]]:
    records: list[MessageRecord] = []
    for payload in peer_reports:
        for r in payload["records"]:
            records.append(
                MessageRecord(
                    message_id=r["message_id"],
                    flow_name=r["flow_name"],
                    traffic_class=TrafficClass(r["traffic_class"]),
                    src=r["src"],
                    dst=r["dst"],
                    size=r["size"],
                    fragments=r["fragments"],
                    submit_time=r["submit_time"],
                    complete_time=r["complete_time"],
                )
            )
    latencies = [r.latency for r in records]
    total_bytes = sum(r.size for r in records)
    if records:
        duration = max(r.complete_time for r in records) - min(
            r.submit_time for r in records
        )
        duration = max(duration, 0.0)
    else:
        duration = 0.0

    by_class: dict[TrafficClass, LatencySummary] = {}
    for traffic_class in TrafficClass:
        samples = [r.latency for r in records if r.traffic_class is traffic_class]
        if samples:
            by_class[traffic_class] = LatencySummary.of(samples)

    transactions = sum(n["requests"] for p in peer_reports for n in p["nics"])
    busy = sum(n["busy_time"] for p in peer_reports for n in p["nics"])
    host = sum(n["host_time"] for p in peer_reports for n in p["nics"])
    nic_count = sum(len(p["nics"]) for p in peer_reports)
    data_packets = sum(p["engine"]["data_packets"] for p in peer_reports)
    segments = sum(p["engine"]["data_segments"] for p in peer_reports)
    control = sum(
        p["engine"]["dispatches"] - p["engine"]["data_packets"] for p in peer_reports
    )
    rdv = sum(p["engine"]["rdv_parked"] for p in peer_reports)
    rdv_timeouts = sum(p["engine"]["rdv_timeouts"] for p in peer_reports)
    failovers = sum(p["engine"]["failovers"] for p in peer_reports)
    retransmits = sum(p["transport"].get("retransmits", 0) for p in peer_reports)
    chaos_stats = [p["chaos"] for p in peer_reports if p.get("chaos")]
    dropped = sum(c["drops"] for c in chaos_stats)
    corrupted = sum(c["corruptions"] for c in chaos_stats)
    duplicated = sum(c["duplicates"] for c in chaos_stats)
    elapsed = max((p["now"] for p in peer_reports), default=0.0) or 1.0

    report = SessionReport(
        duration=duration,
        messages=len(records),
        total_bytes=total_bytes,
        latency=LatencySummary.of(latencies),
        latency_by_class=by_class,
        throughput=total_bytes / duration if duration > 0 else 0.0,
        message_rate=len(records) / duration if duration > 0 else 0.0,
        network_transactions=transactions,
        data_packets=data_packets,
        control_packets=control,
        aggregation_ratio=segments / data_packets if data_packets else 0.0,
        nic_utilization=busy / (nic_count * elapsed) if nic_count else 0.0,
        host_time=host,
        rdv_count=rdv,
        retransmits=retransmits,
        packets_dropped=dropped,
        packets_corrupted=corrupted,
        packets_duplicated=duplicated,
        failovers=failovers,
        rdv_timeouts=rdv_timeouts,
        degraded=degraded,
        lost_messages=lost_messages,
    )
    return report, records


def _event_from_wire(payload: Mapping[str, Any]) -> TraceEvent:
    """One streamed trace event back into its in-memory shape."""
    return TraceEvent(
        time=float(payload["time"]),
        source=str(payload["source"]),
        kind=str(payload["kind"]),
        detail=dict(payload.get("detail") or {}),
    )


class _ObsCollector:
    """Coordinator-side accumulator for everything the peers stream.

    Owns the offset samples (from bracketed control round-trips), the
    per-peer event streams (FLUSH drains + the REPORT tail) and the
    latest per-peer registry snapshot; :meth:`merge` turns them into the
    aligned cluster view after the run.
    """

    def __init__(self, epoch: float, time_scale: float) -> None:
        self._epoch = epoch
        self._scale = time_scale
        self.samples: list[OffsetSample] = []
        self.events_by_peer: dict[str, list[TraceEvent]] = {}
        self.metrics_by_peer: dict[str, Mapping[str, Any]] = {}
        self.exemplars_by_peer: dict[str, Mapping[str, Any]] = {}
        self.nodes: dict[int, str] = {}

    def timed_request(
        self,
        peer: _Peer,
        msg: dict[str, Any],
        timeout: float | None = None,
        expect: str | None = None,
    ) -> dict[str, Any]:
        """A control round-trip that doubles as a clock-offset probe.

        Any reply carrying ``now`` (STATUS, FLUSH, REPORT) yields one
        :class:`~repro.obs.merge.OffsetSample`; coordinator wall time is
        mapped onto the shared virtual timeline the same way the peers'
        clocks are (seconds past the epoch, divided by the time scale).
        """
        t0 = time.time()
        reply = peer.request(msg, timeout=timeout, expect=expect)
        t1 = time.time()
        now = reply.get("now")
        node = self.nodes.get(peer.rank)
        if now is not None and node is not None:
            self.samples.append(
                OffsetSample(
                    peer=node,
                    t0=(t0 - self._epoch) / self._scale,
                    t1=(t1 - self._epoch) / self._scale,
                    peer_now=float(now),
                )
            )
        return reply

    def ingest_flush(self, reply: Mapping[str, Any]) -> None:
        node = str(reply["node"])
        if reply.get("events"):
            bucket = self.events_by_peer.setdefault(node, [])
            bucket.extend(_event_from_wire(e) for e in reply["events"])
        if reply.get("metrics") is not None:
            self.metrics_by_peer[node] = reply["metrics"]
        if reply.get("exemplars") is not None:
            self.exemplars_by_peer[node] = reply["exemplars"]

    def ingest_report(self, payload: Mapping[str, Any]) -> None:
        node = str(payload["node"])
        if payload.get("trace"):
            bucket = self.events_by_peer.setdefault(node, [])
            bucket.extend(_event_from_wire(e) for e in payload["trace"])
        if payload.get("metrics") is not None:
            self.metrics_by_peer[node] = payload["metrics"]
        if payload.get("exemplars") is not None:
            self.exemplars_by_peer[node] = payload["exemplars"]

    def merge(self) -> MergedTrace:
        crossings = extract_crossings(self.events_by_peer)
        offsets = estimate_offsets(
            self.samples, crossings, peers=self.events_by_peer.keys()
        )
        return align_events(self.events_by_peer, offsets)


def run_live_scenario(
    scenario: Mapping[str, Any],
    *,
    transport: str = "uds",
    time_scale: float = 1.0,
    trace: bool = False,
    timeout: float = 60.0,
    observability: Mapping[str, Any] | None = None,
    serve: str | None = None,
) -> LiveRunResult:
    """Execute a scenario over real sockets; returns the merged result.

    ``transport`` is ``"uds"`` (default: Unix-domain sockets in a private
    tempdir) or ``"tcp"`` (127.0.0.1 ephemeral ports).  ``timeout`` is a
    hard wall-clock bound — if the mesh never quiesces, every peer is
    killed and :class:`~repro.util.errors.TransportError` is raised with
    peer stderr excerpts.  The scenario's ``"run"`` block (virtual-time
    horizon) is ignored: a live run ends when traffic drains.

    ``observability`` is an :class:`~repro.obs.plane.ObservabilityConfig`
    spec shipped to every peer (``trace=True`` is shorthand for
    ``{"trace": True}``); with tracing on, each peer's spool is drained
    every poll and the result carries one aligned merged trace.
    ``serve`` (``"PORT"``/``":PORT"``/``"HOST:PORT"``) additionally
    exposes live cluster ``/metrics`` (Prometheus text), ``/status``
    (JSON), ``/peers`` (liveness), ``/tails`` (tail-latency view),
    ``/tuner`` (online adaptation) and ``/why`` (causal attribution)
    for the duration of the run.

    A scenario ``"faults"`` block arms chaos injection *and* the
    coordinator watchdog: peers that die mid-run are declared dead,
    announced to survivors (``peer_down``), and the run completes with
    ``report.degraded`` set instead of raising.
    """
    if transport not in ("uds", "tcp"):
        raise ConfigurationError(f"live transport must be 'uds' or 'tcp', got {transport!r}")
    n_nodes = int(scenario.get("cluster", {}).get("n_nodes", 2))
    if n_nodes < 2:
        raise ConfigurationError(f"a live run needs >= 2 nodes, got {n_nodes}")
    # Parse chaos here too (the peers re-parse their own copy): the
    # coordinator needs the failure-detection budget before any peer is
    # spawned, and a malformed faults block should fail before fork.
    chaos: ChaosConfig | None = None
    if scenario.get("faults"):
        cluster_seed = int(dict(scenario.get("cluster", {})).get("seed", 0))
        chaos = ChaosConfig.from_spec(dict(scenario["faults"]), default_seed=cluster_seed)
        if chaos.die is not None and chaos.die.rank >= n_nodes:
            raise ConfigurationError(
                f"faults die rank {chaos.die.rank} >= n_nodes {n_nodes}"
            )

    obs_spec = dict(observability or {})
    if trace:
        obs_spec.setdefault("trace", True)
    trace_on = bool(obs_spec.get("trace"))
    # Validate SLO objectives before any peer is spawned (peers re-parse
    # their own copy); the coordinator needs them for /tails and the
    # post-run burn-rate verdicts.
    slo_objectives = parse_slo(obs_spec.get("slo"))
    # Serving live metrics needs registry snapshots flowing even when
    # nobody asked for trace events; flushing is cheap either way.
    flushing = trace_on or serve is not None

    serve_host: str | None = None
    serve_port = 0
    if serve is not None:
        serve_host, serve_port = parse_serve_address(serve)

    # Keep UDS paths short: sun_path is limited to ~104 bytes.
    workdir = tempfile.mkdtemp(prefix="rlive-", dir="/tmp")
    deadline = time.time() + timeout
    peers: list[_Peer] = []
    server: ObsHTTPServer | None = None
    obs_state = _ObsState(str(scenario.get("name", "live")), slo_objectives)
    try:
        # Append as we spawn: if a later _Peer fails to construct, the
        # finally-sweep still kills the children already forked.
        for rank in range(n_nodes):
            peers.append(_Peer(rank, workdir, deadline))
        epoch = time.time()
        obs = _ObsCollector(epoch, time_scale)
        if serve_host is not None:
            server = ObsHTTPServer(
                obs_state.metrics_text, obs_state.status, obs_state.peers,
                obs_state.tails, obs_state.tuner, obs_state.why,
                host=serve_host, port=serve_port,
            )
            server.start()
            print(
                f"[repro.live] serving /metrics, /status, /peers, /tails, "
                f"/tuner and /why on {server.address}",
                file=sys.stderr,
            )
        endpoints: dict[int, dict[str, Any]] = {}
        for peer in peers:
            reply = peer.request(
                {
                    "type": "config",
                    "rank": peer.rank,
                    "n_nodes": n_nodes,
                    "epoch": epoch,
                    "time_scale": time_scale,
                    "trace": trace_on,
                    "observability": obs_spec,
                    "transport": transport,
                    "workdir": workdir,
                    "timeout": timeout,
                    "scenario": dict(scenario),
                }
            )
            endpoints[peer.rank] = reply["endpoint"]
            obs.nodes[peer.rank] = str(reply.get("node", f"n{peer.rank}"))
        # Higher ranks dial lower ranks, so confirm in descending order:
        # rank 0 only has to *accept*, which needs no round-trip first.
        mesh_msg = {"type": "mesh", "endpoints": {str(r): e for r, e in endpoints.items()}}
        for peer in peers:
            assert peer.proc.stdin is not None
            peer.proc.stdin.write(json.dumps(mesh_msg) + "\n")
            peer.proc.stdin.flush()
        for peer in peers:
            peer.read_reply(
                timeout=max(deadline - time.time(), 1.0), expect="mesh_ok"
            )
        for peer in peers:
            peer.request({"type": "start"}, expect="started")
        obs_state.update_status(phase="running", peers=len(peers))

        # The watchdog only arms under chaos: a clean run keeps the old
        # fail-fast contract (any peer death is an immediate error), a
        # chaos run degrades instead of dying with its peers.
        watchdog: PeerWatchdog | None = None
        if chaos is not None:
            watchdog = PeerWatchdog(dict(obs.nodes), dead_after=chaos.dead_after)
        rank_of = {node: rank for rank, node in obs.nodes.items()}
        peer_by_rank = {peer.rank: peer for peer in peers}

        def alive_peers() -> list[_Peer]:
            if watchdog is None:
                return peers
            dead = watchdog.dead
            return [p for p in peers if p.rank not in dead]

        previous: tuple | None = None
        stable = 0
        while True:
            if time.time() > deadline:
                tails = "; ".join(
                    f"p{p.rank}: {p.stderr_tail(400)!r}" for p in alive_peers()
                )
                raise TransportError(
                    f"live run exceeded its {timeout}s wall-clock budget "
                    f"without quiescing ({tails})"
                )
            statuses: dict[int, dict[str, Any]] = {}
            for peer in alive_peers():
                try:
                    status = obs.timed_request(
                        peer, {"type": "status"}, expect="status"
                    )
                except TransportError:
                    if watchdog is None:
                        raise
                    rc = peer.proc.poll()
                    if rc is not None:
                        watchdog.note_exit(peer.rank, rc)
                    else:
                        watchdog.note_control_failure(peer.rank)
                    continue
                if watchdog is not None:
                    watchdog.beat(peer.rank)
                statuses[peer.rank] = status
            for rank, status in statuses.items():
                if status.get("fatal"):
                    raise TransportError(
                        f"peer {rank} hit a transport fault:\n{status['fatal']}"
                    )
            if watchdog is not None:
                # A SIGKILLed peer never fails a request first: reap
                # exits proactively so detection is one poll, not one
                # timeout.
                for peer in alive_peers():
                    rc = peer.proc.poll()
                    if rc is not None:
                        watchdog.note_exit(peer.rank, rc)
                # Worst survivor-reported silence per rank (gossip; the
                # watchdog still requires direct contact loss too).
                worst: dict[int, float] = {}
                for status in statuses.values():
                    for node, age in (status.get("hb_ages") or {}).items():
                        rank = rank_of.get(str(node))
                        if rank is not None:
                            worst[rank] = max(worst.get(rank, 0.0), float(age))
                for rank, age in worst.items():
                    watchdog.note_heartbeat_age(rank, age)
                newly_dead = watchdog.check()
                for dead in newly_dead:
                    print(
                        f"[repro.live] peer {dead.rank} ({dead.node}) declared "
                        f"dead ({dead.reason}, {dead.time_to_detect:.2f}s to "
                        f"detect); degrading run",
                        file=sys.stderr,
                    )
                    peer_by_rank[dead.rank].kill()
                    for peer in alive_peers():
                        try:
                            peer.request(
                                {"type": "peer_down", "nodes": [dead.node]},
                                expect="peer_down_ok",
                            )
                        except TransportError:
                            watchdog.note_control_failure(peer.rank)
                if newly_dead:
                    # Counter agreement must restart against the new
                    # survivor set.
                    previous = None
                    stable = 0
                    continue
            if flushing:
                for peer in alive_peers():
                    try:
                        obs.ingest_flush(
                            obs.timed_request(
                                peer, {"type": "flush"}, expect="flushed"
                            )
                        )
                    except TransportError:
                        if watchdog is None:
                            raise
                        watchdog.note_control_failure(peer.rank)
                if server is not None:
                    for node, snapshot in obs.metrics_by_peer.items():
                        obs_state.update_metrics(node, snapshot)
                    if trace_on:
                        obs_state.update_events(obs.events_by_peer, obs.samples)
            dead_nodes = (
                sorted(d.node for d in watchdog.dead.values())
                if watchdog is not None
                else []
            )
            # Two agreement equations over the survivors:
            #
            # 1. Every submitted-and-not-abandoned message got exactly
            #    one DONE back — from whoever received it, dead peers'
            #    pre-death DONEs included:
            #        Σ(submitted − abandoned) == Σ done_received
            # 2. DONE traffic between survivors balances once each
            #    side's exchanges with the dead are netted out (a DONE
            #    sent *to* a dead peer was received by nobody alive; a
            #    DONE received *from* one was sent by nobody alive):
            #        Σ(done_sent − Σ_dead done_by_dst[d])
            #     == Σ(done_received − Σ_dead done_rx_by_src[d])
            #
            # With no deaths both collapse to the original three-way
            # submitted == done_received == done_sent check.
            submitted = sum(
                s["submitted"] - s.get("abandoned", 0) for s in statuses.values()
            )
            done_rx = sum(s["done_received"] for s in statuses.values())
            done_rx_alive = done_rx - sum(
                s.get("done_rx_by_src", {}).get(d, 0)
                for s in statuses.values()
                for d in dead_nodes
            )
            done_tx_alive = sum(
                s["done_sent"]
                - sum(s.get("done_by_dst", {}).get(d, 0) for d in dead_nodes)
                for s in statuses.values()
            )
            expected_ranks = (
                set(watchdog.alive()) if watchdog is not None
                else set(peer_by_rank)
            )
            complete = set(statuses) == expected_ranks
            snapshot = (submitted, done_rx, done_rx_alive, done_tx_alive, tuple(dead_nodes))
            quiet = complete and all(s["quiet"] for s in statuses.values())
            obs_state.update_status(
                submitted=submitted, done_received=done_rx, done_sent=done_tx_alive,
                quiet=quiet, dead=dead_nodes,
            )
            obs_state.update_peers(
                watchdog.summary() if watchdog is not None
                else {"dead": [], "alive": sorted(peer_by_rank)}
            )
            agree = submitted == done_rx and done_rx_alive == done_tx_alive
            if quiet and agree and snapshot == previous:
                stable += 1
                if stable >= 2:
                    break
            else:
                stable = 0
            previous = snapshot
            time.sleep(_POLL_INTERVAL)

        obs_state.update_status(phase="stopping")
        peer_reports = []
        for peer in alive_peers():
            try:
                peer_reports.append(
                    obs.timed_request(
                        peer,
                        {"type": "stop"},
                        timeout=max(deadline - time.time(), 10.0),
                        expect="report",
                    )
                )
            except TransportError:
                # A peer that quiesced but died before REPORT: degrade
                # late rather than lose the survivors' reports.
                if watchdog is None:
                    raise
                rc = peer.proc.poll()
                if rc is not None:
                    watchdog.note_exit(peer.rank, rc)
                else:
                    watchdog.note_control_failure(peer.rank)
                watchdog.check()
        if not peer_reports:
            raise TransportError(
                "no peer survived to produce a final report: "
                + "; ".join(f"p{p.rank}: {p.stderr_tail(400)!r}" for p in peers)
            )
        for peer in alive_peers():
            try:
                peer.proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                peer.kill()
        dead_peers = list(watchdog.dead.values()) if watchdog is not None else []
    finally:
        for peer in peers:
            peer.kill()
        if server is not None:
            obs_state.update_status(phase="done")
            server.stop()
        shutil.rmtree(workdir, ignore_errors=True)

    for payload in peer_reports:
        if payload.get("fatal"):
            raise TransportError(
                f"peer {payload['node']} hit a transport fault:\n{payload['fatal']}"
            )
        if payload.get("trace_dropped"):
            print(
                f"[repro.live] warning: peer {payload['node']} dropped "
                f"{payload['trace_dropped']} trace events "
                f"(spool overflow; seen={payload.get('trace_seen', '?')})",
                file=sys.stderr,
            )
    lost_messages = sum(
        p["transport"].get("abandoned", 0) for p in peer_reports
    )
    report, records = _merge_report(
        peer_reports, degraded=bool(dead_peers), lost_messages=lost_messages
    )
    for payload in peer_reports:
        obs.ingest_report(payload)
    merged = obs.merge()
    aligned = list(merged.events)
    # The merged trace is truncated whenever any peer's spool evicted
    # events before a drain; mark it the same way the sim flight
    # recorder marks its exports so obs analyze / obs why warn loudly.
    spool_dropped = sum(p.get("trace_dropped") or 0 for p in peer_reports)
    if spool_dropped:
        aligned.append(
            TraceEvent(
                time=aligned[-1].time if aligned else 0.0,
                source="obs:coordinator",
                kind="obs.truncated",
                detail={
                    "seen": sum(p.get("trace_seen") or 0 for p in peer_reports),
                    "dropped": spool_dropped,
                    "capacity": None,
                },
            )
        )
    events = [event_to_dict(e) for e in aligned]
    if dead_peers and obs.metrics_by_peer:
        # Death accounting lives with the authority that declared it:
        # a pseudo-peer snapshot, so /metrics and obs diff see it with
        # the same peer-labelled shape as everything else.
        coord = MetricsRegistry()
        for dead in dead_peers:
            coord.counter(
                "repro_peer_deaths_total",
                {"reason": dead.reason},
                help="Peers declared dead by the coordinator watchdog",
            ).inc()
            coord.histogram(
                "repro_peer_time_to_detect_seconds",
                help="Silence-to-declaration latency per declared death",
                base=0.01, growth=2.0, n_buckets=16,
            ).observe(dead.time_to_detect)
        obs.metrics_by_peer["coordinator"] = coord.to_snapshot()
    cluster_registry = (
        merge_registries(obs.metrics_by_peer) if obs.metrics_by_peer else None
    )
    # Post-run tail view: collapse the per-peer sketches into cluster
    # series, then apply the estimated clock offsets to the edge
    # sketches — exact, because every sample on a directed edge needs
    # the same constant correction (see correct_edge_sketches).
    tails: dict[str, Any] = {}
    tuner_summary = pool_tuner_counters(obs.metrics_by_peer)
    if obs.metrics_by_peer:
        aggregated = aggregate_registries(obs.metrics_by_peer.values())
        corrected = correct_edge_sketches(aggregated, merged.offsets)
        tail_view = TailView(aggregated, slo_objectives)
        tails = tail_view.snapshot()
        tails["edges_offset_corrected"] = corrected
        # The report's tail columns come from the pooled message-latency
        # sketch (all nodes merged), same source the sim plane uses.
        pooled = pooled_message_sketch(aggregated)
        if pooled is not None:
            report = replace(
                report,
                latency_p99_us=pooled.quantile(0.99),
                latency_p999_us=pooled.quantile(0.999),
            )
    # Post-run causal attribution over the offset-corrected merged
    # trace — the coordinator is the only vantage point that sees a
    # sender's submit and the receiver's delivery in one stream.
    if trace_on:
        blame_report = attribute_events(aligned)
        if blame_report.messages or obs.exemplars_by_peer:
            blame_edges = blame_report.edges()
            tails["blame"] = {
                "messages": len(blame_report.messages),
                "incomplete": blame_report.incomplete,
                "truncated": blame_report.truncated,
                "edges": blame_edges,
                "slowest": [b.to_dict() for b in blame_report.slowest(5)],
                "peer_exemplars": dict(obs.exemplars_by_peer),
            }
            if cluster_registry is not None:
                export_blame(blame_edges, cluster_registry)
    rtts = [
        sample
        for p in peer_reports
        for app in p.get("apps", [])
        for sample in app.get("rtts", [])
    ]
    return LiveRunResult(
        report=report,
        records=records,
        peer_reports=peer_reports,
        trace_events=events,
        rtts=rtts,
        aligned_events=aligned,
        offsets=merged.offsets,
        crossings_matched=merged.crossings_matched,
        crossings_clamped=merged.crossings_clamped,
        cluster_registry=cluster_registry,
        tails=tails,
        tuner=tuner_summary,
        dead_peers=dead_peers,
    )
