"""Socket-level framing and the fragment ↔ wire-bytes mapping.

Three layers live here, all shared by the peer processes and the tests:

* **Stream framing** — every socket carries a sequence of
  ``u32 length || wire-codec frame`` records.  The wire-codec frame is
  exactly what :func:`repro.network.wire.encode_frame` produces (magic,
  version, CRC-32), so the stream layer only needs to split; a
  :class:`StreamDecoder` is tolerant of arbitrary partial reads and
  rejects oversized or corrupt frames with a typed
  :class:`~repro.util.errors.WireError`.

  When the chaos/reliability plane is active the record body grows a
  one-byte **envelope tag** (:func:`wrap_envelope`):
  ``u32 length || u8 tag || [u64 seq] || frame``.  ``TAG_SEQ`` records
  carry the per-connection reliability sequence number the receiving
  hub deduplicates and reorders on; ``TAG_RAW`` records (HELLO,
  heartbeats, ACKs) bypass the sequence space.  A decoder in
  ``tolerant`` mode counts and skips records whose frame fails CRC or
  envelope validation instead of raising — the reliability layer's
  retransmit path, not the decoder, is then responsible for recovery.
* **Deterministic payload bytes** — the simulator moves *sizes*, not
  bytes; the live plane must put real bytes on the wire and prove they
  arrive intact.  Every fragment's content is a deterministic function
  of ``(sender node, message id, fragment index)``
  (:func:`fragment_seed` + :func:`payload_bytes`), addressable at any
  offset, so the receiver can verify byte-identical delivery of any
  slice without shipping expected values out of band.
* **Mirror reassembly** — on receive, :class:`MirrorReceiver` rebuilds a
  local :class:`~repro.madeleine.message.Message`/``Fragment`` skeleton
  from the segment descriptors and hands a normal
  :class:`~repro.network.wire.WirePacket` to the node's receiver, so the
  existing reassembler, inboxes, subscriptions, and metrics all run
  unmodified.  Mirror messages use a *negative* id space — the sender's
  ids live in another process and must not collide with locally created
  messages — and are keyed back to ``(src node, sender message id)`` so
  completions can be acknowledged to the sender.
"""

from __future__ import annotations

import itertools
import struct
import zlib
from typing import Any, Callable, Iterable

from repro.madeleine.message import Flow, Fragment, Message, PackMode
from repro.network.wire import (
    FRAME_PREFIX_BYTES,
    DecodedFrame,
    PacketKind,
    WirePacket,
    WireSegment,
    decode_frame,
    encode_frame,
)
from repro.sim.process import Future
from repro.util.errors import ProtocolError, WireError

__all__ = [
    "MAX_FRAME_BYTES",
    "TAG_RAW",
    "TAG_SEQ",
    "ENVELOPE_DATA_OFFSET",
    "ENVELOPE_CRC_OFFSET",
    "StreamDecoder",
    "wrap_frame",
    "wrap_envelope",
    "fragment_seed",
    "payload_bytes",
    "encode_live_packet",
    "hello_frame",
    "done_frame",
    "heartbeat_frame",
    "ack_frame",
    "live_ctrl_kind",
    "MirrorReceiver",
]

#: Upper bound on one framed record; a length prefix beyond this is
#: treated as stream corruption, not an allocation request.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH_PREFIX = struct.Struct("!I")
_SEQ = struct.Struct("!Q")

#: Envelope tags (first body byte of an enveloped record).
TAG_RAW = 0  #: unsequenced transport control (HELLO, heartbeat, ACK)
TAG_SEQ = 1  #: sequenced traffic (engine data, DONE acknowledgements)

#: First byte of the wrapped frame inside a sequenced enveloped record:
#: length prefix (4) + tag (1) + sequence number (8).
ENVELOPE_DATA_OFFSET = _LENGTH_PREFIX.size + 1 + _SEQ.size

#: First record byte that is covered by the frame CRC: the envelope
#: header plus the frame's own prefix (whose flags/reserved bytes the
#: decoder ignores, and whose CRC/length fields corrupt the frame in
#: detectable but different ways).  Chaos corruption targets offsets at
#: or beyond this, so an injected flip is always *detected* (CRC
#: mismatch → tolerant decoder skips → retransmit) without ever
#: desynchronizing the stream or forging a sequence number.
ENVELOPE_CRC_OFFSET = ENVELOPE_DATA_OFFSET + FRAME_PREFIX_BYTES


def wrap_frame(frame: bytes) -> bytes:
    """Prefix one wire-codec frame with its length for the stream."""
    if len(frame) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(frame)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH_PREFIX.pack(len(frame)) + frame


def wrap_envelope(frame: bytes, seq: int | None = None) -> bytes:
    """Wrap one frame in the reliability envelope.

    ``seq=None`` produces a ``TAG_RAW`` record; otherwise the record is
    ``TAG_SEQ`` and carries the 64-bit per-connection sequence number
    the receiving hub deduplicates and reorders on.
    """
    if seq is None:
        body = bytes([TAG_RAW]) + frame
    else:
        if seq < 0:
            raise WireError(f"negative reliability sequence number {seq}")
        body = bytes([TAG_SEQ]) + _SEQ.pack(seq) + frame
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"record of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH_PREFIX.pack(len(body)) + body


class StreamDecoder:
    """Incremental splitter: arbitrary byte chunks in, decoded frames out.

    ``feed`` never assumes a read boundary lines up with a frame — a
    TCP segment may end mid-prefix, mid-header, or mid-payload; the
    remainder is buffered until the next chunk.

    Two orthogonal modes:

    * ``envelope`` — records carry the reliability envelope
      (:func:`wrap_envelope`) and ``feed`` returns ``(seq, frame)``
      pairs, ``seq`` being ``None`` for ``TAG_RAW`` records;
    * ``tolerant`` — a record whose body fails envelope or CRC
      validation is *counted* (:attr:`corrupt_frames`) and skipped
      instead of raising, leaving recovery to the retransmit layer.
      The length prefix itself stays load-bearing either way: an
      implausible length is unrecoverable stream corruption.
    """

    __slots__ = ("_buffer", "_envelope", "_tolerant", "corrupt_frames")

    def __init__(self, *, envelope: bool = False, tolerant: bool = False) -> None:
        self._buffer = bytearray()
        self._envelope = envelope
        self._tolerant = tolerant
        #: Records dropped by tolerant mode (CRC / envelope failures).
        self.corrupt_frames = 0

    @property
    def buffered(self) -> int:
        """Bytes received but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list:
        """Absorb one chunk; return every record it completes.

        Plain mode returns ``list[DecodedFrame]``; envelope mode returns
        ``list[tuple[int | None, DecodedFrame]]``.
        """
        self._buffer.extend(data)
        out: list = []
        while True:
            if len(self._buffer) < _LENGTH_PREFIX.size:
                return out
            (length,) = _LENGTH_PREFIX.unpack(self._buffer[: _LENGTH_PREFIX.size])
            if length > MAX_FRAME_BYTES:
                raise WireError(
                    f"stream declares a {length}-byte frame (max {MAX_FRAME_BYTES}); "
                    "treating as corruption"
                )
            end = _LENGTH_PREFIX.size + length
            if len(self._buffer) < end:
                return out
            body = bytes(self._buffer[_LENGTH_PREFIX.size : end])
            del self._buffer[:end]
            try:
                out.append(self._decode_body(body))
            except WireError:
                if not self._tolerant:
                    raise
                self.corrupt_frames += 1

    def _decode_body(self, body: bytes):
        if not self._envelope:
            return decode_frame(body)
        if not body:
            raise WireError("empty enveloped record")
        tag = body[0]
        if tag == TAG_RAW:
            return None, decode_frame(body[1:])
        if tag == TAG_SEQ:
            if len(body) < 1 + _SEQ.size:
                raise WireError("sequenced record too short for its header")
            (seq,) = _SEQ.unpack_from(body, 1)
            return seq, decode_frame(body[1 + _SEQ.size :])
        raise WireError(f"unknown envelope tag {tag}")


# --------------------------------------------------------------------------
# deterministic payload bytes
# --------------------------------------------------------------------------

_TILE_BYTES = 256
_tile_cache: dict[int, bytes] = {}


def fragment_seed(src: str, message_id: int, fragment_index: int) -> int:
    """Stable 32-bit seed identifying one fragment's byte pattern."""
    return zlib.crc32(f"{src}/{message_id}/{fragment_index}".encode("utf-8"))


def _tile(seed: int) -> bytes:
    cached = _tile_cache.get(seed)
    if cached is not None:
        return cached
    out = bytearray(_TILE_BYTES)
    x = (seed or 0x9E3779B9) & 0xFFFFFFFF
    for i in range(_TILE_BYTES):
        x = (x * 1103515245 + 12345) & 0xFFFFFFFF
        out[i] = (x >> 16) & 0xFF
    tile = bytes(out)
    if len(_tile_cache) > 4096:  # sender registries bound this; belt and braces
        _tile_cache.clear()
    _tile_cache[seed] = tile
    return tile


def payload_bytes(seed: int, offset: int, length: int) -> bytes:
    """The fragment's bytes over ``[offset, offset + length)``.

    Absolute-offset addressable: the optimizer may split one fragment
    across packets (striping, rendezvous chunking) and each slice must
    be independently generable and verifiable.
    """
    if offset < 0 or length < 0:
        raise WireError(f"negative payload slice ({offset}, {length})")
    if length == 0:
        return b""
    tile = _tile(seed)
    start = offset % _TILE_BYTES
    reps = (start + length + _TILE_BYTES - 1) // _TILE_BYTES
    return (tile * reps)[start : start + length]


# --------------------------------------------------------------------------
# outbound: WirePacket → frame bytes
# --------------------------------------------------------------------------


def _segment_descriptor(fragment: Fragment) -> dict[str, Any]:
    message = fragment.message
    return {
        "flow": message.flow.flow_id,
        "msg": message.message_id,
        "idx": fragment.index,
        "layout": [[f.size, 1 if f.express else 0] for f in message.fragments],
        "submit": message.submit_time,
        "seq": message.seq,
        "ctx": message.context,
    }


def encode_live_packet(packet: WirePacket, *, wrap: bool = True) -> bytes:
    """Serialize one engine-produced packet into a stream record.

    Data segments reference in-process ``Fragment`` objects; each
    becomes a JSON descriptor (enough for the receiver to rebuild the
    message skeleton) plus deterministic pattern bytes for the slice.
    Control packets (rendezvous handshake) carry their ``meta`` only.

    ``wrap=False`` returns the bare wire-codec frame so the hub can
    apply its own record framing (the reliability envelope).
    """
    segments = []
    for seg in packet.segments:
        fragment = seg.payload
        if not isinstance(fragment, Fragment):
            raise ProtocolError(
                f"live transport cannot serialize non-fragment payload {seg.payload!r}"
            )
        seed = fragment_seed(packet.src, fragment.message.message_id, fragment.index)
        segments.append(
            (_segment_descriptor(fragment), seg.offset, seg.length, payload_bytes(seed, seg.offset, seg.length))
        )
    frame = encode_frame(
        packet.kind, packet.src, packet.dst, packet.channel_id, packet.meta, segments
    )
    return wrap_frame(frame) if wrap else frame


# --------------------------------------------------------------------------
# transport-level control frames (never reach the node receiver)
# --------------------------------------------------------------------------


def live_ctrl_kind(frame: DecodedFrame) -> str | None:
    """The transport-control tag of a frame, or None for engine traffic."""
    tag = frame.meta.get("live_ctrl")
    return tag if isinstance(tag, str) else None


def hello_frame(src: str, rank: int, *, wrap: bool = True) -> bytes:
    """Mesh handshake: identifies the sending peer on a fresh connection."""
    frame = encode_frame(
        PacketKind.CTRL, src, "*", -1, {"live_ctrl": "hello", "rank": rank, "node": src}
    )
    return wrap_frame(frame) if wrap else frame


def done_frame(src: str, dst: str, items: Iterable[tuple[int, float]], *, wrap: bool = True) -> bytes:
    """Delivery acknowledgement: ``items`` are (sender message id, time).

    Sent receiver → sender when a mirrored message completes, so the
    sender can resolve the original ``Message.completion`` future (the
    live analogue of the simulator resolving it at arrival time).
    """
    frame = encode_frame(
        PacketKind.CTRL,
        src,
        dst,
        -1,
        {"live_ctrl": "done", "items": [[mid, t] for mid, t in items]},
    )
    return wrap_frame(frame) if wrap else frame


def heartbeat_frame(src: str, t: float, *, wrap: bool = True) -> bytes:
    """Peer-to-peer liveness beacon (TAG_RAW; never retransmitted)."""
    frame = encode_frame(PacketKind.CTRL, src, "*", -1, {"live_ctrl": "hb", "t": t})
    return wrap_frame(frame) if wrap else frame


def ack_frame(src: str, dst: str, seqs: Iterable[int], *, wrap: bool = True) -> bytes:
    """Reliability acknowledgement for a batch of received sequence numbers."""
    frame = encode_frame(
        PacketKind.CTRL, src, dst, -1, {"live_ctrl": "ack", "seqs": [int(s) for s in seqs]}
    )
    return wrap_frame(frame) if wrap else frame


# --------------------------------------------------------------------------
# inbound: frame → WirePacket with mirror fragments
# --------------------------------------------------------------------------


class MirrorReceiver:
    """Rebuilds message/fragment skeletons for packets arriving by socket.

    One per peer.  The first slice of an unseen ``(src, message id)``
    creates a *mirror* message — negative id, the local ``Flow`` object
    looked up by the flow id the symmetric scenario construction
    guarantees both sides share — and every slice is verified against
    the deterministic payload pattern before being handed to the node's
    ordinary receiver.
    """

    def __init__(self, node_name: str, flow_lookup: Callable[[int], Flow | None]) -> None:
        self.node_name = node_name
        self._flow_lookup = flow_lookup
        self._mirrors: dict[tuple[str, int], Message] = {}
        self._origins: dict[int, tuple[str, int]] = {}
        self._mirror_ids = itertools.count(-1, -1)
        self.bytes_verified = 0
        self.corrupt_slices = 0

    def packet_from_frame(self, frame: DecodedFrame) -> WirePacket:
        """Reconstruct the data packet the sending engine dispatched."""
        segments: list[WireSegment] = []
        for seg in frame.segments:
            fragment = self._mirror_fragment(frame.src, seg.descriptor)
            seed = fragment_seed(frame.src, seg.descriptor["msg"], fragment.index)
            expected = payload_bytes(seed, seg.offset, seg.length)
            if seg.data != expected:
                self.corrupt_slices += 1
                raise WireError(
                    f"payload mismatch on {frame.src}->{self.node_name} "
                    f"msg {seg.descriptor['msg']} fragment {fragment.index} "
                    f"[{seg.offset}, {seg.offset + seg.length})"
                )
            self.bytes_verified += seg.length
            segments.append(WireSegment(fragment, seg.offset, seg.length))
        return WirePacket(
            kind=frame.kind,
            src=frame.src,
            dst=frame.dst,
            channel_id=frame.channel_id,
            segments=tuple(segments),
            meta=frame.meta,
        )

    def _mirror_fragment(self, src: str, descriptor: dict[str, Any]) -> Fragment:
        try:
            sender_mid = descriptor["msg"]
            flow_id = descriptor["flow"]
            index = descriptor["idx"]
            layout = descriptor["layout"]
        except KeyError as missing:
            raise WireError(f"segment descriptor missing {missing}") from None
        message = self._mirrors.get((src, sender_mid))
        if message is None:
            message = self._make_mirror(src, sender_mid, flow_id, layout, descriptor)
        if not 0 <= index < len(message.fragments):
            raise WireError(
                f"fragment index {index} outside mirror layout of "
                f"{len(message.fragments)} fragment(s)"
            )
        return message.fragments[index]

    def _make_mirror(
        self,
        src: str,
        sender_mid: int,
        flow_id: int,
        layout: list,
        descriptor: dict[str, Any],
    ) -> Message:
        flow = self._flow_lookup(flow_id)
        if flow is None:
            raise ProtocolError(
                f"packet from {src!r} references unknown flow id {flow_id} "
                f"on node {self.node_name!r} (scenario construction out of sync?)"
            )
        if flow.dst != self.node_name:
            raise ProtocolError(
                f"flow {flow.name!r} terminates at {flow.dst!r}, but its data "
                f"arrived at {self.node_name!r}"
            )
        # Bypass Message.__init__: it would bump the shared id counter and
        # the flow's messages_sent, desynchronizing this peer's locally
        # created messages from the sender's.
        message = object.__new__(Message)
        message.message_id = next(self._mirror_ids)
        message.flow = flow
        message.fragments = []
        message.submit_time = float(descriptor.get("submit") or 0.0)
        message.completion = Future()
        message.seq = int(descriptor.get("seq") or 0)
        message.context = descriptor.get("ctx") or {}
        for i, entry in enumerate(layout):
            try:
                size, express = int(entry[0]), bool(entry[1])
            except (TypeError, ValueError, IndexError):
                raise WireError(f"malformed layout entry {entry!r}") from None
            # Fragment.__init__ does not append; preserve the Message
            # invariant that fragments[i].index == i.
            message.fragments.append(Fragment(message, i, size, PackMode.CHEAPER, express))
        self._mirrors[(src, sender_mid)] = message
        self._origins[message.message_id] = (src, sender_mid)
        return message

    def origin_of(self, message: Message) -> tuple[str, int] | None:
        """(src node, sender message id) of a mirror, or None if local."""
        return self._origins.get(message.message_id)

    def forget(self, message: Message) -> None:
        """Drop bookkeeping for a completed mirror message."""
        origin = self._origins.pop(message.message_id, None)
        if origin is not None:
            self._mirrors.pop(origin, None)

    def forget_from(self, src: str) -> int:
        """Drop every open mirror created for packets from ``src``.

        Called when the coordinator declares ``src`` dead: its half-sent
        messages will never complete and their mirrors would otherwise
        leak for the rest of the run.  Returns the number forgotten.
        """
        doomed = [key for key in self._mirrors if key[0] == src]
        for key in doomed:
            message = self._mirrors.pop(key)
            self._origins.pop(message.message_id, None)
        return len(doomed)

    @property
    def open_mirrors(self) -> int:
        """Mirror messages created but not yet forgotten."""
        return len(self._mirrors)
