"""The live transport plane: the optimizing engine over real sockets.

Everything above the NIC — strategies, cost model, channel policies,
the engines themselves — runs *unmodified*; this package swaps the
discrete-event substrate for wall-clock asyncio:

* :mod:`repro.live.loop` — a ``Simulator``-shaped clock over the asyncio
  event loop (sticky ``now``, shared epoch across peers);
* :mod:`repro.live.transport` — stream framing over the
  :mod:`repro.network.wire` byte codec, deterministic payload patterns,
  and the mirror reassembly that feeds received bytes back into the
  unmodified messaging stack;
* :mod:`repro.live.nic` — a NIC whose idle transition is the socket
  write buffer draining;
* :mod:`repro.live.peer` — one node's stack in one OS process;
* :mod:`repro.live.observe` — the full observability plane inside one
  peer (wall-clock sampler, trace spool streamed to the coordinator);
* :mod:`repro.live.cluster` — the coordinator that spawns a peer mesh,
  runs a scenario file live, merges a ``SessionReport``, and assembles
  the cluster-wide observability view (aligned trace, merged metrics,
  optional live ``/metrics`` endpoint).
"""

from repro.live.cluster import LiveRunResult, run_live_scenario
from repro.live.loop import LiveClock, LiveEvent
from repro.live.nic import LiveNIC
from repro.live.observe import LiveSampler, PeerClusterAdapter, SpoolSink
from repro.live.transport import MirrorReceiver, StreamDecoder

__all__ = [
    "LiveClock",
    "LiveEvent",
    "LiveNIC",
    "LiveSampler",
    "MirrorReceiver",
    "PeerClusterAdapter",
    "SpoolSink",
    "StreamDecoder",
    "LiveRunResult",
    "run_live_scenario",
]
