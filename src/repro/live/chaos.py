"""Socket-level chaos: seeded fault injection on the live wire.

The simulated plane injects faults *below* the NIC model
(:mod:`repro.network.faults`); the live plane injects them *below* the
stream framing — on the actual bytes a peer is about to write to a
socket.  Same vocabulary, same determinism contract:

* a :class:`ChaosConfig` is parsed from the scenario ``"faults"`` block
  using the PR 1 fault grammar (``drop`` / ``corrupt`` / ``duplicate``
  / ``jitter`` probabilities, ``outages``, ``reliability``, ``seed``)
  plus three live-only knobs — ``disconnect`` (periodic hard connection
  close), ``die`` (process-death injection for degraded-run tests) and
  ``heartbeat`` (liveness tuning);
* every peer derives one :class:`ChaosInjector` per outbound link from
  the shared seed, so the injected fault *sequence* is a pure function
  of ``(seed, link name)`` — identical across runs, independent of
  socket timing;
* corruption flips a byte at or past
  :data:`~repro.live.transport.ENVELOPE_CRC_OFFSET` (the CRC-covered
  frame body), so an injected flip never desynchronizes the
  length-prefixed stream, forges a sequence number, or lands on an
  ignored prefix byte — the frame CRC catches it and the retransmit
  layer recovers.

The injector decides; the hub (:mod:`repro.live.peer`) delivers.  That
mirrors the sim split between :class:`~repro.network.faults.FaultPlane`
and :class:`~repro.network.reliable.ReliableTransport`.
"""

from __future__ import annotations

import signal as _signal
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.live.transport import ENVELOPE_CRC_OFFSET
from repro.network.faults import (
    FaultSpec,
    FaultVerdict,
    RailOutage,
    parse_fault_spec,
    parse_outage,
)
from repro.network.reliable import ReliabilityConfig
from repro.util.errors import ConfigurationError, FaultInjectionError
from repro.util.rng import SeedSequenceRegistry

__all__ = ["DieSpec", "ChaosConfig", "ChaosStats", "ChaosInjector"]

#: Nominal one-way latency stand-in for the loopback wire.  The sim's
#: ``rto_for`` defaults to 4x the packet's own one-way latency, which is
#: meaningless over a real socket; this constant makes an unconfigured
#: reliability block resolve to a 50 ms base RTO.
NOMINAL_ONE_WAY = 0.0125

_CHAOS_KEYS = frozenset(
    {
        "seed",
        "drop",
        "corrupt",
        "duplicate",
        "jitter",
        "outages",
        "reliability",
        "disconnect",
        "die",
        "heartbeat",
    }
)
_DISCONNECT_KEYS = frozenset({"every"})
_DIE_KEYS = frozenset({"rank", "after", "signal"})


def _parse_signal(value: Any) -> int:
    if isinstance(value, int):
        return value
    name = str(value).upper()
    if not name.startswith("SIG"):
        name = "SIG" + name
    try:
        return int(getattr(_signal, name))
    except AttributeError:
        raise ConfigurationError(f"unknown die signal {value!r}") from None


@dataclass(frozen=True, slots=True)
class DieSpec:
    """Process-death injection: one rank kills itself mid-run.

    Lets the degraded-path integration tests script a SIGKILL from
    inside the scenario instead of reaching into the coordinator's
    process table.
    """

    rank: int
    after: float  #: seconds after START
    signal: int = int(_signal.SIGKILL)

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"die rank must be >= 0, got {self.rank}")
        if self.after < 0:
            raise ConfigurationError(f"die delay must be >= 0, got {self.after}")


@dataclass(frozen=True, slots=True)
class ChaosConfig:
    """Everything the scenario ``"faults"`` block means to a live run."""

    spec: FaultSpec = field(default_factory=FaultSpec)
    seed: int = 0
    outages: tuple[RailOutage, ...] = ()
    #: Hard-close every outbound connection after this many shipped
    #: records (0 = never).  Exercises reconnect + retransmit-on-redial.
    disconnect_every: int = 0
    die: DieSpec | None = None
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    heartbeat_interval: float = 0.25
    heartbeat_misses: int = 8

    def __post_init__(self) -> None:
        if self.disconnect_every < 0:
            raise ConfigurationError(
                f"disconnect.every must be >= 0, got {self.disconnect_every}"
            )
        if self.heartbeat_interval <= 0:
            raise ConfigurationError(
                f"heartbeat.interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.heartbeat_misses < 1:
            raise ConfigurationError(
                f"heartbeat.misses must be >= 1, got {self.heartbeat_misses}"
            )

    @classmethod
    def from_spec(cls, spec: Mapping[str, Any], default_seed: int = 0) -> "ChaosConfig":
        """Parse a scenario ``"faults"`` block for the live plane.

        Rejects unknown keys loudly, including the sim-only
        ``per_nic`` / ``per_network`` overrides — a live link has no
        per-rail fault lottery (chaos rides the connection, outages
        ride the NIC objects).
        """
        spec = dict(spec)
        for key in spec:
            if key in ("per_nic", "per_network"):
                raise ConfigurationError(
                    f"faults key {key!r} is not supported by the live plane "
                    "(chaos applies per connection; use 'outages' for rail loss)"
                )
            if key not in _CHAOS_KEYS:
                raise ConfigurationError(
                    f"unknown live faults key {key!r} (known: {sorted(_CHAOS_KEYS)})"
                )
        try:
            fault_spec = parse_fault_spec(
                {
                    k: spec[k]
                    for k in ("drop", "corrupt", "duplicate", "jitter")
                    if k in spec
                },
                "live chaos",
            )
            outages = tuple(parse_outage(entry) for entry in spec.get("outages", []))
        except FaultInjectionError as bad:
            raise ConfigurationError(str(bad)) from None

        disconnect = dict(spec.get("disconnect") or {})
        for key in disconnect:
            if key not in _DISCONNECT_KEYS:
                raise ConfigurationError(
                    f"unknown faults disconnect key {key!r} "
                    f"(known: {sorted(_DISCONNECT_KEYS)})"
                )
        die_spec = spec.get("die")
        die = None
        if die_spec is not None:
            die_spec = dict(die_spec)
            for key in die_spec:
                if key not in _DIE_KEYS:
                    raise ConfigurationError(
                        f"unknown faults die key {key!r} (known: {sorted(_DIE_KEYS)})"
                    )
            if "rank" not in die_spec:
                raise ConfigurationError("faults die block requires 'rank'")
            die = DieSpec(
                rank=int(die_spec["rank"]),
                after=float(die_spec.get("after", 0.0)),
                signal=_parse_signal(die_spec.get("signal", "KILL")),
            )
        hb = dict(spec.get("heartbeat") or {})
        for key in hb:
            if key not in ("interval", "misses"):
                raise ConfigurationError(
                    f"unknown faults heartbeat key {key!r} "
                    "(known: ['interval', 'misses'])"
                )
        return cls(
            spec=fault_spec,
            seed=int(spec.get("seed", default_seed)),
            outages=outages,
            disconnect_every=int(disconnect.get("every", 0)),
            die=die,
            reliability=ReliabilityConfig.from_spec(spec.get("reliability", {})),
            heartbeat_interval=float(hb.get("interval", 0.25)),
            heartbeat_misses=int(hb.get("misses", 8)),
        )

    @property
    def wire_active(self) -> bool:
        """Whether wire-level injection (and hence the reliability
        envelope) is in force.  Outage-only or die-only chaos keeps the
        legacy framing: those failures are detected, not retransmitted
        around."""
        return not self.spec.is_null or self.disconnect_every > 0

    def rto_for(self, attempts: int) -> float:
        """Retransmit timeout for the (attempts+1)-th live transmission."""
        return self.reliability.rto_for(NOMINAL_ONE_WAY, attempts)

    @property
    def dead_after(self) -> float:
        """Silence budget before a heartbeat source is presumed dead."""
        return self.heartbeat_interval * self.heartbeat_misses


@dataclass(slots=True)
class ChaosStats:
    """What one injector has done to its link so far."""

    judged: int = 0
    drops: int = 0
    corruptions: int = 0
    duplicates: int = 0
    delayed: int = 0
    disconnects: int = 0


class ChaosInjector:
    """Seeded per-link fault decisions for outbound records.

    Deterministic in the sequence of :meth:`judge` calls: the verdict
    stream is a pure function of ``(config.seed, link)``, never of
    wall-clock or socket timing.  The *effect* of a verdict (how long a
    delayed write actually takes) is of course timing-dependent — only
    the decisions are reproducible, exactly as in the sim plane.
    """

    def __init__(self, config: ChaosConfig, link: str) -> None:
        self.config = config
        self.link = link
        self.stats = ChaosStats()
        self._rng = SeedSequenceRegistry(config.seed)
        self._stream = self._rng.stream(f"chaos:{link}")
        self._corrupt_stream = self._rng.stream(f"chaos:corrupt:{link}")
        self._since_disconnect = 0

    def judge(self) -> FaultVerdict:
        """Decide the fate of one outbound record (same draw order as
        :meth:`~repro.network.faults.FaultPlane.judge`)."""
        spec = self.config.spec
        self.stats.judged += 1
        if spec.is_null:
            return FaultVerdict()
        stream = self._stream
        drop = spec.drop > 0 and stream.uniform() < spec.drop
        corrupt = spec.corrupt > 0 and stream.uniform() < spec.corrupt
        duplicate = spec.duplicate > 0 and stream.uniform() < spec.duplicate
        delay = stream.exponential(spec.jitter) if spec.jitter > 0 else 0.0
        dup_delay = (
            stream.exponential(spec.jitter) if duplicate and spec.jitter > 0 else 0.0
        )
        if drop:
            self.stats.drops += 1
        if corrupt:
            self.stats.corruptions += 1
        if duplicate:
            self.stats.duplicates += 1
        if delay > 0 or dup_delay > 0:
            self.stats.delayed += 1
        return FaultVerdict(
            drop=drop, corrupt=corrupt, duplicate=duplicate, delay=delay, dup_delay=dup_delay
        )

    def judge_ack(self) -> bool:
        """Whether one outbound ACK record is lost (separate stream, as
        in the sim plane, so data and ACK lotteries stay independent)."""
        spec = self.config.spec
        if spec.drop == 0:
            return False
        stream = self._rng.stream(f"chaos:ack:{self.link}")
        return stream.uniform() < spec.drop

    def corrupt_record(self, record: bytes) -> bytes:
        """Flip one payload byte of an enveloped stream record.

        Only offsets inside the CRC-covered frame body are touched, so
        the stream stays parseable and the corruption is *detected*
        (CRC mismatch → tolerant decoder drops it) rather than fatal
        or — worse — silent (the frame prefix carries reserved bytes
        the decoder ignores).  Records too short to corrupt safely are
        returned unchanged.
        """
        if len(record) <= ENVELOPE_CRC_OFFSET:
            return record
        span = len(record) - ENVELOPE_CRC_OFFSET
        offset = ENVELOPE_CRC_OFFSET + int(self._corrupt_stream.uniform() * span) % span
        flip = 1 + int(self._corrupt_stream.uniform() * 255) % 255
        mutated = bytearray(record)
        mutated[offset] ^= flip
        return bytes(mutated)

    def should_disconnect(self) -> bool:
        """Whether to hard-close the connection after this record."""
        every = self.config.disconnect_every
        if every <= 0:
            return False
        self._since_disconnect += 1
        if self._since_disconnect >= every:
            self._since_disconnect = 0
            self.stats.disconnects += 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaosInjector({self.link!r}, judged={self.stats.judged}, "
            f"drops={self.stats.drops}, disconnects={self.stats.disconnects})"
        )
