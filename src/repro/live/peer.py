"""One live peer process: a single node of the engine stack over sockets.

Run as ``python -m repro.live.peer`` by the coordinator
(:mod:`repro.live.cluster`); never started by hand.  The peer speaks a
JSON-lines control protocol on stdin/stdout::

    CONFIG  -> READY {endpoint}          build the stack, bind a server
    MESH    -> MESH_OK                   connect to lower ranks, await rest
    START   -> STARTED                   install workload apps
    STATUS  -> STATUS {quiet, counters}  quiescence polling
    FLUSH   -> FLUSHED {events, metrics} drain trace spool + registry snapshot
    STOP    -> REPORT {...}              final records + counters, then exit

Inside, the peer assembles the *same* stack the simulated
:class:`~repro.runtime.cluster.Cluster` builds — NICs, drivers from the
registry, an unmodified :class:`~repro.core.engine.OptimizingEngine` (or
the legacy baseline), reassembler, :class:`~repro.madeleine.api.MadAPI`
— except the NICs are :class:`~repro.live.nic.LiveNIC`\\ s whose idle
transition is a socket-drain event, and time is a
:class:`~repro.live.loop.LiveClock` over asyncio.

**Symmetry rule.**  Every peer builds the *entire* scenario — all flows,
all apps — but only its own node gets a real engine; remote nodes get
stubs whose ``submit_message`` is a no-op.  Because every flow is opened
synchronously during app install, before any traffic, the module-level
flow-id counter assigns identical ids on every peer, which is what lets
a wire descriptor's ``flow`` field resolve to the right local
:class:`~repro.madeleine.message.Flow` object.  Processes driving a
remote node's half of a workload simply stall on futures that never
resolve locally; global termination is detected by counter agreement
(messages submitted == deliveries acknowledged), not by app completion.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import traceback
from collections import deque
from typing import Any, Callable

from repro.core.config import EngineConfig
from repro.core.strategies.base import make_strategy
from repro.drivers.registry import make_driver
from repro.madeleine.api import MadAPI
from repro.madeleine.message import Flow, Message
from repro.madeleine.rx import MessageReassembler
from repro.network.fabric import Node
from repro.network.reliable import ReceiveLedger, SendWindow, TransportStats
from repro.network.technologies import TECHNOLOGIES
from repro.network.virtual import TrafficClass
from repro.network.wire import META_CORR, META_SENT_AT, META_VIA
from repro.obs.plane import ObservabilityConfig, ObservabilityPlane
from repro.runtime.metrics import MetricsCollector
from repro.tuner import Tuner, TunerConfig
from repro.util.errors import ConfigurationError, ProtocolError
from repro.util.rng import SeedSequenceRegistry
from repro.util.tracing import Tracer, event_to_dict

from repro.live.chaos import ChaosConfig, ChaosInjector
from repro.live.liveness import Backoff, HeartbeatLedger
from repro.live.loop import LiveClock
from repro.live.nic import LiveNIC
from repro.live.observe import LiveSampler, PeerClusterAdapter, SpoolSink
from repro.live.transport import (
    MirrorReceiver,
    StreamDecoder,
    ack_frame,
    done_frame,
    heartbeat_frame,
    hello_frame,
    live_ctrl_kind,
    wrap_envelope,
    wrap_frame,
)

__all__ = ["LivePeer", "main"]

_READ_CHUNK = 1 << 16

#: Default flight-recorder window when the scenario does not size one.
#: Unlike the old hard REPORT cap, this never truncates what the
#: coordinator sees — streaming flushes carry the full event stream —
#: it only bounds the in-peer crash recorder.
_RING_DEFAULT = 50_000


def _node_names(n: int) -> list[str]:
    return [f"n{i}" for i in range(n)]


def _outage_matches(outage, nic) -> bool:
    """Whether one scheduled outage targets one local live NIC.

    Live NICs are named ``<node>.<tech><net_index><nic_index>`` (e.g.
    ``n0.mx00``); an outage's ``nic`` must match the full name, while
    ``network`` matches the sim-plane network prefix (``mx0`` hits
    ``n0.mx00`` and ``n0.mx01`` on every node).
    """
    if outage.nic is not None:
        return nic.name == outage.nic
    _node, tech_part = nic.name.split(".", 1)
    return tech_part.startswith(str(outage.network))


# --------------------------------------------------------------------------
# socket hub: the peer's connections to every other peer
# --------------------------------------------------------------------------


class _ChaosDisconnect(Exception):
    """Deliberate chaos-injected hard close of one connection."""


class _Connection:
    """One socket to one peer: a single pump task + a reader task.

    asyncio's ``StreamWriter.drain`` supports exactly one concurrent
    waiter, so all outbound records funnel through one pump coroutine;
    NIC submits enqueue ``(bytes, on_drained)`` and the pump invokes the
    callback once the kernel accepted every byte (write-buffer high-water
    mark is 0, so ``drain`` returning *means* drained).

    Connections are disposable: any socket error, EOF, or injected
    disconnect routes through :meth:`Hub.conn_failed`, which flushes
    every queued write (releasing the NICs that are waiting on drains)
    and lets the owning link decide whether to redial.  ``counted``
    distinguishes run traffic (blocks quiescence until drained) from
    liveness beacons (heartbeats must never hold a quiet verdict open).
    """

    def __init__(self, hub: "Hub", reader, writer, name: str | None) -> None:
        self.hub = hub
        self.reader = reader
        self.writer = writer
        self.name = name  # peer node name; None until its HELLO arrives
        self.decoder = StreamDecoder(envelope=hub.envelope, tolerant=hub.envelope)
        self.outbound: deque[tuple[bytes | None, Callable[[], None] | None, bool]] = (
            deque()
        )
        self.failed = False
        self._current: tuple[Callable[[], None] | None, bool] | None = None
        self._wake = asyncio.Event()
        writer.transport.set_write_buffer_limits(0)
        self._tasks = [
            asyncio.ensure_future(self._pump()),
            asyncio.ensure_future(self._read()),
        ]

    def enqueue(
        self,
        data: bytes,
        on_drained: Callable[[], None] | None,
        counted: bool = True,
    ) -> None:
        if self.failed:
            self.hub.flush_write(on_drained)
            return
        self.outbound.append((data, on_drained, counted))
        if counted:
            self.hub.writes_in_flight += 1
        self._wake.set()

    def request_close(self) -> None:
        """Chaos disconnect: hard-close once everything queued so far is out."""
        if not self.failed:
            self.outbound.append((None, None, False))
            self._wake.set()

    async def _pump(self) -> None:
        try:
            while True:
                while not self.outbound:
                    self._wake.clear()
                    await self._wake.wait()
                data, on_drained, counted = self.outbound.popleft()
                if data is None:
                    raise _ChaosDisconnect
                self._current = (on_drained, counted)
                self.writer.write(data)
                await self.writer.drain()
                self.hub.bytes_tx += len(data)
                self.hub.clock.refresh()
                if counted:
                    self.hub.writes_in_flight -= 1
                self._current = None
                if on_drained is not None:
                    on_drained()
        except asyncio.CancelledError:
            pass
        except (_ChaosDisconnect, ConnectionError, OSError):
            self.hub.conn_failed(self)
        except Exception:  # pragma: no cover - surfaced via STATUS
            self.hub.note_fatal(traceback.format_exc())
            self.hub.conn_failed(self)

    async def _read(self) -> None:
        try:
            while True:
                chunk = await self.reader.read(_READ_CHUNK)
                if not chunk:
                    self.hub.conn_failed(self)
                    return
                self.hub.bytes_rx += len(chunk)
                self.hub.clock.refresh()
                self.hub.ingest(self, self.decoder.feed(chunk))
        except asyncio.CancelledError:
            pass
        except (ConnectionError, OSError):
            self.hub.conn_failed(self)
        except Exception:  # pragma: no cover - surfaced via STATUS
            self.hub.note_fatal(traceback.format_exc())
            self.hub.conn_failed(self)

    def abort(self) -> None:
        """Flush every queued write and release the socket.  Idempotent."""
        if self.failed:
            return
        self.failed = True
        if self._current is not None:
            on_drained, counted = self._current
            self._current = None
            if counted:
                self.hub.writes_in_flight -= 1
            self.hub.flush_write(on_drained)
        while self.outbound:
            data, on_drained, counted = self.outbound.popleft()
            if data is None:
                continue
            if counted:
                self.hub.writes_in_flight -= 1
            self.hub.flush_write(on_drained)
        self.hub.corrupt_frames_closed += self.decoder.corrupt_frames
        for task in self._tasks:
            task.cancel()
        try:
            self.writer.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass

    # Legacy teardown name (Hub.close and tests call it).
    close = abort


class _Unacked:
    """Sender-side state for one enveloped record awaiting its ACK."""

    __slots__ = ("frame", "attempts", "timer")

    def __init__(self, frame: bytes) -> None:
        self.frame = frame  # bare wire-codec frame (re-enveloped per attempt)
        self.attempts = 0
        self.timer = None  # armed LiveEvent for the retransmit timeout


class _Link:
    """The durable relationship with one peer node.

    Connections are transient — chaos closes them, peers die and come
    back — but the link persists: it owns the reliability window and
    ledger (whose sequence space spans reconnects), the chaos injector
    for the outbound direction, and the redial backoff.  Exactly one
    side of each pair redials (``dial`` — the higher rank, matching the
    MESH bring-up direction) so a flap never produces crossed dials.
    """

    __slots__ = (
        "name",
        "rank",
        "dial",
        "endpoint",
        "conn",
        "dead",
        "ever_connected",
        "window",
        "ledger",
        "injector",
        "backoff",
        "redial_handle",
    )

    def __init__(self, name: str, rank: int, dial: bool) -> None:
        self.name = name
        self.rank = rank
        self.dial = dial
        self.endpoint: dict[str, Any] | None = None
        self.conn: _Connection | None = None
        self.dead = False
        self.ever_connected = False
        self.window = SendWindow()
        self.ledger = ReceiveLedger()
        self.injector: ChaosInjector | None = None
        self.backoff: Backoff | None = None
        self.redial_handle = None

    @property
    def writable(self) -> bool:
        return self.conn is not None and not self.conn.failed


class Hub:
    """All-to-all socket mesh plus sender-side delivery bookkeeping.

    With a :class:`~repro.live.chaos.ChaosConfig` whose wire faults are
    active, every record crosses in the reliability envelope
    (:func:`~repro.live.transport.wrap_envelope`): sequenced data/DONE
    records are retransmitted on RTO until ACKed and deduplicated /
    reordered on receive, so injected drops, corruption, duplication and
    disconnects still yield byte-identical delivery.  Without chaos the
    legacy plain framing is used unchanged — TCP/UDS loopback is already
    reliable and the envelope would be pure overhead.
    """

    def __init__(
        self,
        clock: LiveClock,
        node_name: str,
        rank: int,
        deliver,
        names: list[str] | None = None,
        chaos: "ChaosConfig | None" = None,
    ) -> None:
        self.clock = clock
        self.node_name = node_name
        self.rank = rank
        self._deliver = deliver  # deliver(frame): engine/data traffic
        self.chaos = chaos
        self.envelope = chaos is not None and chaos.wire_active
        self.links: dict[str, _Link] = {}
        for peer_rank, name in enumerate(names or []):
            if name == node_name:
                continue
            link = _Link(name, peer_rank, dial=rank > peer_rank)
            if chaos is not None:
                link.injector = ChaosInjector(chaos, f"{node_name}->{name}")
                link.backoff = Backoff(seed=chaos.seed * 1009 + rank * 37 + peer_rank)
            self.links[name] = link
        self._anonymous: list[_Connection] = []
        self._mesh_ready = asyncio.Event()
        self._expected: set[str] = set()
        self._server = None
        self.closing = False
        self.writes_in_flight = 0
        self.bytes_tx = 0
        self.bytes_rx = 0
        #: Locally submitted messages awaiting a DONE acknowledgement.
        self.sent_messages: dict[int, Message] = {}
        self.submitted = 0
        self.done_sent = 0
        self.done_received = 0
        #: DONE acknowledgements sent/received, broken down by the far
        #: peer — the coordinator subtracts a dead peer's share from
        #: both sides when checking counter agreement on a degraded run.
        self.done_by_dst: dict[str, int] = {}
        self.done_rx_by_src: dict[str, int] = {}
        self.stats = TransportStats()
        self.hb = HeartbeatLedger(chaos.dead_after) if chaos is not None else None
        self.heartbeats_sent = 0
        self.reconnects = 0
        self.disconnects = 0
        self.lost_frames = 0  # legacy framing only: writes on a dead conn
        self.corrupt_frames_closed = 0
        self.abandoned = 0  # messages whose destination peer died
        self.abandoned_frames = 0
        self.blackholed = 0  # packets addressed to a declared-dead peer
        self.done_suppressed = 0
        self.dead_nodes: set[str] = set()
        self._hb_handle = None
        self.fatal: str | None = None

    def note_fatal(self, text: str) -> None:
        """Record the first transport fault; surfaced via STATUS polls."""
        if self.fatal is None:
            self.fatal = text

    def flush_write(self, on_drained: Callable[[], None] | None) -> None:
        """Release one queued write whose bytes will never be sent.

        Always deferred via ``call_soon``: the callback re-enters the
        engine (NIC idle → next dispatch) and must never run inside the
        submit path that enqueued the write.
        """
        if on_drained is not None:
            self.clock._loop.call_soon(self._release_write, on_drained)

    def _release_write(self, on_drained: Callable[[], None]) -> None:
        self.clock.refresh()
        on_drained()

    # -- server / mesh -------------------------------------------------
    async def serve(self, transport: str, workdir: str) -> dict[str, Any]:
        """Bind the listening socket; returns the endpoint descriptor."""
        if transport == "uds":
            path = f"{workdir}/p{self.rank}.sock"
            self._server = await asyncio.start_unix_server(self._on_accept, path=path)
            return {"kind": "uds", "path": path}
        if transport == "tcp":
            self._server = await asyncio.start_server(self._on_accept, "127.0.0.1", 0)
            host, port = self._server.sockets[0].getsockname()[:2]
            return {"kind": "tcp", "host": host, "port": port}
        raise ConfigurationError(f"unknown live transport {transport!r}")

    def _on_accept(self, reader, writer) -> None:
        self._anonymous.append(_Connection(self, reader, writer, None))

    def _wrap_raw(self, frame: bytes) -> bytes:
        """Record framing for an unsequenced transport-control frame."""
        return wrap_envelope(frame) if self.envelope else wrap_frame(frame)

    async def _open(self, endpoint: dict[str, Any]):
        if endpoint["kind"] == "uds":
            return await asyncio.open_unix_connection(endpoint["path"])
        return await asyncio.open_connection(endpoint["host"], endpoint["port"])

    async def connect(self, peer_name: str, endpoint: dict[str, Any]) -> None:
        """Dial one peer's endpoint and introduce ourselves with a HELLO."""
        link = self.links[peer_name]
        link.endpoint = endpoint
        reader, writer = await self._open(endpoint)
        conn = _Connection(self, reader, writer, peer_name)
        self._register(peer_name, conn)
        conn.enqueue(
            self._wrap_raw(hello_frame(self.node_name, self.rank, wrap=False)),
            None,
            counted=False,
        )

    def _register(self, name: str, conn: _Connection) -> None:
        link = self.links.get(name)
        if link is None:
            raise ProtocolError(f"connection from unknown peer {name!r}")
        conn.name = name
        if conn in self._anonymous:
            self._anonymous.remove(conn)
        if link.dead:
            conn.abort()
            return
        old = link.conn
        if old is not None and old is not conn:
            if self.chaos is None:
                raise ProtocolError(f"duplicate connection from peer {name!r}")
            # Newest wins: the far side gave up on the old socket.
            link.conn = None
            old.abort()
        link.conn = conn
        if link.ever_connected and old is not conn:
            self.reconnects += 1
        link.ever_connected = True
        if link.backoff is not None:
            link.backoff.reset()
        if self._expected and all(
            self.links[n].writable or self.links[n].dead for n in self._expected
        ):
            self._mesh_ready.set()

    async def await_mesh(self, expected: set[str]) -> None:
        """Block until a connection to every expected peer is identified."""
        self._expected = set(expected)
        if all(self.links[n].writable or self.links[n].dead for n in self._expected):
            return
        await self._mesh_ready.wait()

    # -- connection failure / redial -----------------------------------
    def conn_failed(self, conn: _Connection) -> None:
        """One socket died (EOF, error, or injected disconnect).

        Flush its queued writes, detach it from its link, and — when
        chaos is active and this side is the dialer — start the backoff
        redial loop.  Without chaos a lost connection is terminal for
        the pair but silent: teardown closes connections in STOP order,
        so survivors routinely see EOFs that mean "run over", not
        "peer crashed"; the coordinator's watchdog owns that distinction.
        """
        if conn.failed:
            conn.abort()  # no-op, keeps idempotence obvious
            return
        conn.abort()
        if conn in self._anonymous:
            self._anonymous.remove(conn)
            return
        link = self.links.get(conn.name) if conn.name is not None else None
        if link is None or link.conn is not conn:
            return
        link.conn = None
        self.disconnects += 1
        if self.closing or link.dead or self.chaos is None:
            return
        if link.dial and link.endpoint is not None:
            self._schedule_redial(link)

    def _schedule_redial(self, link: _Link) -> None:
        if link.redial_handle is not None or link.dead or self.closing:
            return
        delay = link.backoff.next() if link.backoff is not None else 0.05
        # Raw loop timer: redial pacing is wall-clock and must not block
        # quiescence (the unacked windows already do, meaningfully).
        link.redial_handle = self.clock._loop.call_later(
            delay, self._start_redial, link
        )

    def _start_redial(self, link: _Link) -> None:
        link.redial_handle = None
        if link.dead or self.closing or link.writable:
            return
        asyncio.ensure_future(self._redial(link))

    async def _redial(self, link: _Link) -> None:
        try:
            reader, writer = await self._open(link.endpoint)
        except OSError:
            self._schedule_redial(link)
            return
        if link.dead or self.closing or link.writable:
            writer.close()
            return
        conn = _Connection(self, reader, writer, link.name)
        self._register(link.name, conn)
        conn.enqueue(
            self._wrap_raw(hello_frame(self.node_name, self.rank, wrap=False)),
            None,
            counted=False,
        )

    # -- sending -------------------------------------------------------
    def send_packet(self, packet, data: bytes, on_drained) -> None:
        """NIC path: ship one engine packet to its destination peer.

        ``data`` is the bare wire-codec frame; the hub owns record
        framing (plain length prefix, or the reliability envelope when
        chaos is active).
        """
        link = self.links.get(packet.dst)
        if link is None:
            raise ProtocolError(
                f"no live connection from {self.node_name!r} to {packet.dst!r}"
            )
        if link.dead:
            # Declared-dead destination: the flow is abandoned, the NIC
            # must still drain or the engine wedges behind it.
            self.blackholed += 1
            self.flush_write(on_drained)
            return
        for segment in packet.segments:
            message = segment.payload.message
            if message.message_id not in self.sent_messages:
                self.sent_messages[message.message_id] = message
                self.submitted += 1
        if self.envelope:
            self._ship(link, data, on_drained)
            return
        if not link.writable:
            if not link.ever_connected:
                raise ProtocolError(
                    f"no live connection from {self.node_name!r} to {packet.dst!r}"
                )
            # Legacy framing has no retransmit: the bytes are simply
            # gone.  Counted loudly; counter agreement will stall and
            # the coordinator's deadline or watchdog decides.
            self.lost_frames += 1
            self.flush_write(on_drained)
            return
        link.conn.enqueue(wrap_frame(data), on_drained)

    def send_done(self, dst: str, message_id: int, when: float) -> None:
        """Acknowledge a completed delivery back to its sender."""
        link = self.links.get(dst)
        if link is None:
            raise ProtocolError(f"cannot acknowledge to unknown peer {dst!r}")
        if link.dead:
            self.done_suppressed += 1
            return
        self.done_sent += 1
        self.done_by_dst[dst] = self.done_by_dst.get(dst, 0) + 1
        frame = done_frame(self.node_name, dst, [(message_id, when)], wrap=False)
        if self.envelope:
            self._ship(link, frame, None)
            return
        if not link.writable:
            self.lost_frames += 1
            return
        link.conn.enqueue(wrap_frame(frame), None)

    # -- reliability: envelope ship / retransmit / ack ------------------
    def _ship(self, link: _Link, frame: bytes, on_drained) -> None:
        """Stamp one frame into the link's sequence space and transmit."""
        entry = _Unacked(frame)
        seq = link.window.stamp(entry)
        self.stats.packets_sent += 1
        self._transmit(link, seq, entry, on_drained)

    def _transmit(self, link: _Link, seq: int, entry: _Unacked, on_drained=None) -> None:
        """One transmission attempt: chaos lottery, then the socket.

        The retransmit timer is armed *unconditionally* first — through
        the live clock, so an unacked record holds quiescence open — and
        covers the disconnected case too: while the link is down the
        record just waits for the timer, and a post-reconnect RTO
        re-ships it.  ``on_drained`` (NIC release) fires on the first
        attempt whatever the verdict; a dropped record still occupied
        the modeled rail.
        """
        entry.timer = self.clock.schedule(
            self.chaos.rto_for(entry.attempts), self._on_rto, link, seq
        )
        conn = link.conn
        if conn is None or conn.failed:
            self.flush_write(on_drained)
            return
        entry.attempts += 1
        verdict = link.injector.judge()
        if verdict.drop:
            self.flush_write(on_drained)
        else:
            record = wrap_envelope(entry.frame, seq)
            if verdict.corrupt:
                record = link.injector.corrupt_record(record)
            if verdict.delay > 0:
                self._enqueue_delayed(conn, record, on_drained, verdict.delay)
            else:
                conn.enqueue(record, on_drained)
            if verdict.duplicate:
                dup = wrap_envelope(entry.frame, seq)
                if verdict.dup_delay > 0:
                    self._enqueue_delayed(conn, dup, None, verdict.dup_delay)
                else:
                    conn.enqueue(dup, None)
        if link.injector.should_disconnect():
            conn.request_close()

    def _enqueue_delayed(self, conn: _Connection, record, on_drained, delay) -> None:
        real = delay * self.clock.time_scale
        self.clock._loop.call_later(real, self._delayed_write, conn, record, on_drained)

    def _delayed_write(self, conn: _Connection, record, on_drained) -> None:
        self.clock.refresh()
        if conn.failed:
            self.flush_write(on_drained)
        else:
            conn.enqueue(record, on_drained)

    def _on_rto(self, link: _Link, seq: int) -> None:
        """Retransmit timeout: the record was never acknowledged."""
        entry = link.window.get(seq)
        if entry is None or link.dead:
            return
        if entry.attempts > self.chaos.reliability.max_retries:
            self.stats.exhausted += 1
            link.window.ack(seq)
            self.note_fatal(
                f"record seq={seq} to {link.name!r} unacknowledged after "
                f"{entry.attempts} attempts"
            )
            return
        if link.writable:
            self.stats.retransmits += 1
        self._transmit(link, seq, entry)

    def _handle_ack(self, link: _Link, seqs) -> None:
        for seq in seqs:
            entry = link.window.ack(int(seq))
            if entry is not None and entry.timer is not None:
                self.clock.cancel(entry.timer)
                entry.timer = None

    # -- receiving -----------------------------------------------------
    def ingest(self, conn: _Connection, records: list) -> None:
        """Absorb one chunk's decoded records from ``conn``.

        Plain mode routes frames straight to :meth:`handle_frame`.
        Envelope mode additionally runs the reliability receive side:
        sequenced records pass the link's ledger (dedup + in-order
        release) and every observed sequence number — duplicates
        included — is acknowledged in one batch per chunk, subject to
        the ACK-loss lottery.  Any traffic at all refreshes the sender's
        heartbeat ledger entry; a busy link needs no beacons.
        """
        if self.hb is not None and conn.name is not None:
            self.hb.record(conn.name, self.clock.refresh())
        if not self.envelope:
            for frame in records:
                self.handle_frame(frame, conn)
            return
        seen_seqs: list[int] = []
        for seq, frame in records:
            if seq is None:
                self._handle_raw(frame, conn)
                continue
            link = self.links.get(conn.name) if conn.name is not None else None
            if link is None:
                self.note_fatal("sequenced record on an unidentified connection")
                continue
            seen_seqs.append(seq)
            released = link.ledger.admit(seq, frame)
            if released is None:
                self.stats.dups_discarded += 1
            elif not released:
                self.stats.reorder_held += 1
            else:
                for ready in released:
                    self.stats.delivered += 1
                    self.handle_frame(ready, conn)
        if seen_seqs and conn.name is not None and not conn.failed:
            link = self.links.get(conn.name)
            if link is not None and not link.dead:
                if link.injector.judge_ack():
                    self.stats.acks_dropped += 1
                else:
                    self.stats.acks_sent += 1
                    conn.enqueue(
                        wrap_envelope(
                            ack_frame(self.node_name, conn.name, seen_seqs, wrap=False)
                        ),
                        None,
                        counted=False,
                    )

    def _handle_raw(self, frame, conn: _Connection) -> None:
        """Unsequenced (TAG_RAW) records: HELLO, heartbeat, ACK."""
        ctrl = live_ctrl_kind(frame)
        if ctrl == "hello":
            self._register(str(frame.meta["node"]), conn)
            return
        if ctrl == "hb":
            return  # arrival itself refreshed the ledger in ingest()
        if ctrl == "ack":
            link = self.links.get(conn.name) if conn.name is not None else None
            if link is not None:
                self._handle_ack(link, frame.meta.get("seqs", ()))
            return
        self.note_fatal(
            f"unsequenced non-control frame from {conn.name!r} "
            f"(live_ctrl={ctrl!r})"
        )

    def handle_frame(self, frame, conn: _Connection) -> None:
        """Route one decoded frame: transport control here, data onward.

        HELLO identifies an inbound connection; DONE resolves the
        acknowledged messages' completion futures; everything else is
        engine traffic handed to the node's receiver via ``deliver``.
        """
        ctrl = live_ctrl_kind(frame)
        if ctrl == "hello":
            self._register(str(frame.meta["node"]), conn)
            return
        if ctrl == "hb":
            return
        if ctrl == "done":
            for message_id, when in frame.meta.get("items", ()):
                message = self.sent_messages.pop(message_id, None)
                if message is None:
                    continue  # duplicate/late DONE: already accounted
                self.done_received += 1
                self.done_rx_by_src[frame.src] = (
                    self.done_rx_by_src.get(frame.src, 0) + 1
                )
                if not message.completion.done:
                    message.completion.resolve(float(when))
            return
        self._deliver(frame)

    # -- heartbeats ----------------------------------------------------
    def start_heartbeats(self) -> None:
        """Begin the periodic liveness beacon (chaos runs only)."""
        if self.chaos is None or self._hb_handle is not None:
            return
        self._arm_heartbeat()

    def _arm_heartbeat(self) -> None:
        real = self.chaos.heartbeat_interval * self.clock.time_scale
        self._hb_handle = self.clock._loop.call_later(real, self._heartbeat_tick)

    def _heartbeat_tick(self) -> None:
        if self.closing:
            return
        now = self.clock.refresh()
        # Heartbeats bypass the chaos lottery: they are the liveness
        # *probe*, and a probe subject to the fault it measures would
        # conflate wire loss with peer death.
        record = self._wrap_raw(heartbeat_frame(self.node_name, now, wrap=False))
        for link in self.links.values():
            if link.writable and not link.dead:
                link.conn.enqueue(record, None, counted=False)
                self.heartbeats_sent += 1
        self._arm_heartbeat()

    # -- peer death ----------------------------------------------------
    def mark_dead(self, node: str) -> int:
        """React to the coordinator declaring ``node`` dead.

        Returns the number of locally submitted messages abandoned
        because their destination died.  The link stays dead for the
        rest of the run: no redial, sends blackhole, DONEs to it are
        suppressed, its unacked window is drained (cancelling the
        retransmit timers that would otherwise hold quiescence open
        forever).
        """
        link = self.links.get(node)
        if link is None or link.dead:
            return 0
        link.dead = True
        self.dead_nodes.add(node)
        if link.redial_handle is not None:
            link.redial_handle.cancel()
            link.redial_handle = None
        for _seq, entry in link.window.drain():
            if entry.timer is not None:
                self.clock.cancel(entry.timer)
                entry.timer = None
            self.abandoned_frames += 1
        if link.conn is not None:
            conn, link.conn = link.conn, None
            conn.abort()
        abandoned = 0
        for message_id, message in list(self.sent_messages.items()):
            if message.flow.dst == node:
                del self.sent_messages[message_id]
                abandoned += 1
        self.abandoned += abandoned
        return abandoned

    # -- quiescence / teardown -----------------------------------------
    @property
    def in_flight(self) -> int:
        """Enveloped records awaiting acknowledgement across all links."""
        return sum(link.window.in_flight for link in self.links.values())

    @property
    def corrupt_frames(self) -> int:
        """Records the tolerant decoders discarded (chaos corruption)."""
        live = sum(
            link.conn.decoder.corrupt_frames
            for link in self.links.values()
            if link.conn is not None
        )
        live += sum(c.decoder.corrupt_frames for c in self._anonymous)
        return self.corrupt_frames_closed + live

    @property
    def buffered_bytes(self) -> int:
        """Partial frames sitting in any connection's decoder."""
        total = sum(
            link.conn.decoder.buffered
            for link in self.links.values()
            if link.conn is not None
        )
        return total + sum(c.decoder.buffered for c in self._anonymous)

    def chaos_stats(self) -> dict[str, int]:
        """Aggregate injector decisions across every outbound link."""
        out = {"judged": 0, "drops": 0, "corruptions": 0, "duplicates": 0,
               "delayed": 0, "disconnects": 0}
        for link in self.links.values():
            if link.injector is None:
                continue
            stats = link.injector.stats
            out["judged"] += stats.judged
            out["drops"] += stats.drops
            out["corruptions"] += stats.corruptions
            out["duplicates"] += stats.duplicates
            out["delayed"] += stats.delayed
            out["disconnects"] += stats.disconnects
        return out

    def close(self) -> None:
        """Tear down every connection, timer, and the listening server."""
        self.closing = True
        if self._hb_handle is not None:
            self._hb_handle.cancel()
            self._hb_handle = None
        for link in self.links.values():
            if link.redial_handle is not None:
                link.redial_handle.cancel()
                link.redial_handle = None
            for _seq, entry in link.window.drain():
                if entry.timer is not None:
                    self.clock.cancel(entry.timer)
                    entry.timer = None
            if link.conn is not None:
                link.conn.abort()
        for conn in list(self._anonymous):
            conn.abort()
        if self._server is not None:
            self._server.close()


# --------------------------------------------------------------------------
# the engine stack, assembled for one node
# --------------------------------------------------------------------------


class _StubEngine:
    """Engine stand-in for remote nodes (satisfies CommEngineProtocol).

    A message submitted here belongs to a process that is really running
    on another peer; locally it goes nowhere and the submitting process
    stalls on a future that never resolves — by design.
    """

    def __init__(self, node_name: str) -> None:
        self.node_name = node_name

    def submit_message(self, message: Message) -> None:
        pass

    def post_receive(self, flow: Flow, count: int = 1) -> None:
        pass


class _RegisteringAPI(MadAPI):
    """MadAPI that records every opened flow in a shared id registry.

    The registry is what lets the mirror receiver resolve a wire
    descriptor's flow id back to the local ``Flow`` object.
    """

    def __init__(self, node_name, engine, reassembler, registry: dict[int, Flow]) -> None:
        super().__init__(node_name, engine, reassembler)
        self._registry = registry

    def open_flow(self, dst, name=None, traffic_class=TrafficClass.DEFAULT) -> Flow:
        flow = super().open_flow(dst, name, traffic_class)
        self._registry[flow.flow_id] = flow
        return flow


class _PeerCluster:
    """The cluster facade workload apps program against.

    Apps only touch ``.sim``, ``.api(name)`` and ``.stream(name)`` (see
    :class:`~repro.middleware.base.AppBase`); this provides exactly
    those, backed by the live clock and per-node APIs.
    """

    def __init__(self, sim: LiveClock, apis: dict[str, MadAPI], rng) -> None:
        self.sim = sim
        self.apis = apis
        self.rng = rng

    def api(self, node_name: str) -> MadAPI:
        return self.apis[node_name]

    def stream(self, name: str):
        return self.rng.stream(name)


class LivePeer:
    """Everything one peer process owns; driven by the control protocol."""

    def __init__(self, config: dict[str, Any]) -> None:
        scenario = config["scenario"]
        self.rank = int(config["rank"])
        self.n_nodes = int(config["n_nodes"])
        self.scenario = scenario
        self.names = _node_names(self.n_nodes)
        self.local = self.names[self.rank]
        self.timeout = float(config.get("timeout", 60.0))
        faults_spec = scenario.get("faults")
        cluster_seed = int(dict(scenario.get("cluster", {})).get("seed", 0))
        self.chaos: ChaosConfig | None = (
            ChaosConfig.from_spec(faults_spec, default_seed=cluster_seed)
            if faults_spec
            else None
        )

        obs_spec = dict(config.get("observability") or {})
        obs_spec.setdefault("trace", bool(config.get("trace")))
        self.obs_config = ObservabilityConfig.from_spec(obs_spec)

        self.tracer = Tracer()
        loop = asyncio.get_running_loop()
        self.clock = LiveClock(
            loop,
            epoch=float(config["epoch"]),
            time_scale=float(config.get("time_scale", 1.0)),
            tracer=self.tracer,
        )
        self.hub = Hub(
            self.clock,
            self.local,
            self.rank,
            self._deliver_frame,
            names=self.names,
            chaos=self.chaos,
        )
        self.flows: dict[int, Flow] = {}
        self.mirror = MirrorReceiver(self.local, self.flows.get)
        self.metrics = MetricsCollector()
        self.apps: list = []
        self._apps_installed = False
        #: Data frames that raced ahead of this peer's START (see
        #: ``_deliver_frame``); replayed once the flows exist.
        self._pre_start_frames: list = []
        self._build_stack()
        self._install_observability()
        self._install_tuner()

    def _install_observability(self) -> None:
        """Attach the full observability plane to this peer's stack.

        The plane gets a sampler-less config — its base sampler lives on
        the simulator event queue, which on a live clock would pin
        ``pending_timers`` above zero and defeat quiescence detection —
        and a :class:`LiveSampler` is driven off raw loop timers instead.
        The spool is the streaming buffer the coordinator drains with
        FLUSH requests; the plane's ring buffer stays as the bounded
        in-process flight recorder.
        """
        ring = self.obs_config.ring_buffer
        self.plane = ObservabilityPlane(
            ObservabilityConfig(
                sample_interval=None,
                ring_buffer=ring if ring is not None else _RING_DEFAULT,
                trace=self.obs_config.trace,
                slo=self.obs_config.slo,
                exemplars=self.obs_config.exemplars,
            )
        )
        self.obs_adapter = PeerClusterAdapter(
            self.clock,
            self.engine,
            self.node,
            self.reassembler,
            transport=self.hub if self.hub.envelope else None,
        )
        self.plane.install(self.obs_adapter)
        self.spool: SpoolSink | None = None
        if self.obs_config.trace:
            self.spool = SpoolSink()
            self.tracer.subscribe(self.spool)
        self.sampler: LiveSampler | None = None
        if self.obs_config.sample_interval is not None:
            self.sampler = LiveSampler(
                self.obs_adapter,
                self.obs_config.sample_interval,
                registry=self.plane.registry,
                source=f"obs:{self.local}",
                tail_view=self.plane.tail_view,
            )
        self._flushed = False

    def _install_tuner(self) -> None:
        """Wrap this peer's engine with the online tuner when configured.

        Same grammar and escape hatch as the sim plane: no ``tuner``
        block (or ``enabled: false``) installs nothing, keeping dispatch
        byte-identical to a tuner-less peer.  Tuner counters ride the
        FLUSH registry snapshots as ``repro_tuner_*`` metrics and feed
        the coordinator's ``/tuner`` endpoint.
        """
        self.tuner: Tuner | None = None
        spec = self.scenario.get("tuner")
        if spec is None:
            return
        config = spec if isinstance(spec, TunerConfig) else TunerConfig.from_spec(spec)
        if not config.enabled:
            return
        engine_kind = dict(self.scenario.get("cluster", {})).get("engine", "optimizing")
        if engine_kind != "optimizing":
            raise ConfigurationError(
                f"the tuner requires the optimizing engine, not {engine_kind!r}"
            )
        tuner = Tuner(self.engine, config, tail_view=self.plane.tail_view)
        tuner.install()
        self.tuner = tuner

    # -- construction --------------------------------------------------
    def _build_stack(self) -> None:
        spec = dict(self.scenario.get("cluster", {}))
        engine_kind = spec.get("engine", "optimizing")
        networks = [tuple(net) for net in spec.get("networks", [("mx", 1)])]
        seed = spec.get("seed", 0)

        self.node = Node(self.clock, self.local)
        for i, (tech, per_node) in enumerate(networks):
            if tech not in TECHNOLOGIES:
                raise ConfigurationError(
                    f"unknown technology {tech!r} (known: {sorted(TECHNOLOGIES)})"
                )
            link = TECHNOLOGIES[tech]()
            for idx in range(per_node):
                self.node.nics.append(
                    LiveNIC(
                        self.clock,
                        f"{self.local}.{tech}{i}{idx}",
                        self.local,
                        link,
                        self.hub.send_packet,
                    )
                )
        drivers = [make_driver(nic) for nic in self.node.nics]

        config_spec = spec.get("config")
        engine_config = EngineConfig(**config_spec) if config_spec else None
        kwargs: dict[str, Any] = {"config": engine_config}
        if engine_kind == "optimizing":
            from repro.core.engine import OptimizingEngine as engine_cls
            from repro.runtime.scenario import POLICY_TYPES

            strategy_name = spec.get("strategy")
            kwargs["strategy"] = (
                make_strategy(strategy_name) if strategy_name is not None else None
            )
            policy_name = spec.get("policy")
            if policy_name is not None:
                kwargs["policy"] = POLICY_TYPES[policy_name]()
        elif engine_kind == "legacy":
            from repro.baseline.legacy import LegacyEngine as engine_cls
        else:
            raise ConfigurationError(f"unknown engine kind {engine_kind!r}")
        self.engine = engine_cls(self.clock, self.node, drivers, **kwargs)

        self.reassembler = MessageReassembler(self.clock, self.local)
        self.node.receiver.register_default_sink(self.reassembler.sink)
        self.metrics.attach(self.reassembler)
        # Chain-wrap the reassembler's single completion slot: metrics
        # first (records the delivery), then the DONE acknowledgement
        # back to the sender so it can resolve the original message.
        record = self.reassembler.on_message_complete

        def on_complete(message: Message, now: float) -> None:
            record(message, now)
            origin = self.mirror.origin_of(message)
            if origin is not None:
                src, sender_mid = origin
                self.hub.send_done(src, sender_mid, now)
                self.mirror.forget(message)

        self.reassembler.on_message_complete = on_complete

        self.apis: dict[str, MadAPI] = {
            self.local: _RegisteringAPI(
                self.local, self.engine, self.reassembler, self.flows
            )
        }
        for name in self.names:
            if name == self.local:
                continue
            stub_rx = MessageReassembler(self.clock, name)
            self.apis[name] = _RegisteringAPI(
                name, _StubEngine(name), stub_rx, self.flows
            )
        self.facade = _PeerCluster(self.clock, self.apis, SeedSequenceRegistry(seed))

    # -- inbound engine traffic ----------------------------------------
    def _deliver_frame(self, frame) -> None:
        # START is delivered peer by peer, so a fast peer's first data
        # frame can land here before *this* peer has installed its apps
        # (and therefore registered its flows).  Park such frames and
        # replay them from install_apps — decoding one now would die on
        # "unknown flow id".
        if not self._apps_installed:
            self._pre_start_frames.append(frame)
            return
        if self.tracer.enabled and META_CORR in frame.meta:
            # The receive half of a wire crossing: carries the sender's
            # correlation id and clock so the coordinator can match it
            # to the exact nic.send span on the sending peer.
            self.tracer.emit(
                self.clock.now,
                f"live:{self.local}",
                "live.recv",
                corr=frame.meta[META_CORR],
                src=frame.src,
                dst=self.local,
                via=frame.meta.get(META_VIA),
                sent_at=frame.meta.get(META_SENT_AT),
                packet_kind=frame.kind.value,
                segments=len(frame.segments),
                bytes=sum(seg.length for seg in frame.segments),
            )
        packet = self.mirror.packet_from_frame(frame)
        self.node.receiver.deliver(packet)

    # -- control-protocol steps ----------------------------------------
    def install_apps(self) -> int:
        """Build and install every scenario workload; returns the count.

        Installation opens all flows synchronously (the symmetry rule in
        the module docstring) and starts the app processes — traffic
        begins as soon as the event loop runs.
        """
        from repro.runtime.scenario import build_app

        workloads = self.scenario.get("workloads", [])
        if not workloads:
            raise ConfigurationError("scenario has no workloads")
        for entry in workloads:
            app = build_app(entry)
            app.install(self.facade)
            self.apps.append(app)
        if self.sampler is not None:
            self.sampler.start()
        self._arm_chaos()
        self._apps_installed = True
        if self._pre_start_frames:
            early, self._pre_start_frames = self._pre_start_frames, []
            for frame in early:
                self._deliver_frame(frame)
        return len(self.apps)

    def _arm_chaos(self) -> None:
        """Start heartbeats and schedule outages / the die timer.

        Runs at START (not CONFIG) so every injected event is measured
        from the moment traffic begins.  Outage and die timers are raw
        loop timers, not live-clock events: a scheduled-but-unfired
        outage must not hold an otherwise-finished run open — if the
        workload completes first, the outage simply never happens (the
        simulator, which can fast-forward virtual time, always fires
        them; a wall-clock run cannot).
        """
        chaos = self.chaos
        if chaos is None:
            return
        self.hub.start_heartbeats()
        loop = self.clock._loop
        scale = self.clock.time_scale
        for outage in chaos.outages:
            nics = [nic for nic in self.node.nics if _outage_matches(outage, nic)]
            if not nics:
                raise ConfigurationError(
                    f"outage names no local NIC on {self.local!r} "
                    f"(nic={outage.nic!r}, network={outage.network!r}, "
                    f"local: {[n.name for n in self.node.nics]})"
                )
            for nic in nics:
                loop.call_later(outage.at * scale, self._outage_fail, nic)
                if outage.recover is not None:
                    loop.call_later(outage.recover * scale, self._outage_recover, nic)
        die = chaos.die
        if die is not None and die.rank == self.rank:
            if die.rank >= self.n_nodes:
                raise ConfigurationError(
                    f"die rank {die.rank} outside the {self.n_nodes}-node cluster"
                )
            loop.call_later(die.after * scale, os.kill, os.getpid(), die.signal)

    def _outage_fail(self, nic) -> None:
        self.clock.refresh()
        nic.fail()

    def _outage_recover(self, nic) -> None:
        self.clock.refresh()
        nic.recover()

    def mark_dead(self, nodes: list[str]) -> dict[str, int]:
        """React to a ``peer_down`` broadcast from the coordinator.

        Abandons messages destined for the dead nodes, blackholes the
        links, and purges half-reassembled inbound messages whose
        sender died — a partial message that can never complete would
        otherwise pin ``incomplete_messages`` above zero and wedge
        quiescence for the rest of the run.
        """
        abandoned = 0
        purged = 0
        for node in nodes:
            abandoned += self.hub.mark_dead(node)
            purged += self.reassembler.abandon_incomplete(
                lambda message, _src=node: (
                    (self.mirror.origin_of(message) or (None,))[0] == _src
                )
            )
            self.mirror.forget_from(node)
        return {
            "abandoned": abandoned,
            "purged_partials": purged,
            "dead": sorted(self.hub.dead_nodes),
        }

    @property
    def quiet(self) -> bool:
        """No local activity is pending or in flight.

        The live analogue of an empty simulator event queue: nothing in
        the waiting lists, no hold timer, no handshake awaiting a reply,
        every NIC idle, no half-reassembled message, no armed clock
        timer, no bytes the kernel has not accepted, and no partial
        frame in any stream decoder.  Cross-peer bytes still in flight
        are caught by the coordinator's counter-agreement check, not
        here.
        """
        engine = self.engine
        return (
            engine.backlog == 0
            and not engine.hold_timer_armed
            and engine.rendezvous_in_flight == 0
            and engine.deferred_rendezvous == 0
            # A failed rail is quiescent: its in-flight work was released
            # on fail() and the engine re-routed around it.
            and all(nic.idle or nic.failed for nic in self.node.nics)
            and self.reassembler.incomplete_messages == 0
            and self.clock.pending_timers == 0
            and self.hub.writes_in_flight == 0
            and self.hub.in_flight == 0
            and self.hub.buffered_bytes == 0
        )

    def status(self) -> dict[str, Any]:
        """One STATUS reply: quiescence flag plus delivery counters.

        ``now`` is this peer's clock at reply time; the coordinator
        brackets the request with its own clock readings to estimate the
        peer's offset (round-trip midpoint, see :mod:`repro.obs.merge`).
        """
        now = self.clock.refresh()
        out = {
            "type": "status",
            "quiet": self.quiet,
            "now": now,
            "submitted": self.hub.submitted,
            "done_sent": self.hub.done_sent,
            "done_received": self.hub.done_received,
            "abandoned": self.hub.abandoned,
            "done_by_dst": dict(self.hub.done_by_dst),
            "done_rx_by_src": dict(self.hub.done_rx_by_src),
            "dead": sorted(self.hub.dead_nodes),
            "fatal": self.hub.fatal,
        }
        if self.hub.hb is not None:
            out["hb_ages"] = self.hub.hb.ages(now)
        return out

    def flush(self) -> dict[str, Any]:
        """One FLUSH reply: stream everything captured since the last one.

        Drains the spool (trace events) and snapshots the registry, so
        the coordinator's merged view — and its ``/metrics`` endpoint —
        stay current while the run is in flight.  Once any flush has
        happened the final REPORT only carries the tail, never a
        re-send.
        """
        self._flushed = True
        events = self.spool.drain() if self.spool is not None else []
        # set_total is monotonic, so re-mirroring every flush is safe and
        # keeps the in-flight /metrics view from reading all-zero until
        # the final report.
        self._mirror_live_metrics()
        reply = {
            "type": "flushed",
            "node": self.local,
            "now": self.clock.refresh(),
            "events": [event_to_dict(e) for e in events],
            "spool_dropped": self.spool.dropped if self.spool is not None else 0,
            "metrics": self.plane.registry.to_snapshot(),
        }
        if self.plane.tail_exemplars is not None:
            reply["exemplars"] = self.plane.tail_exemplars.snapshot()
        return reply

    def _mirror_live_metrics(self) -> None:
        """Mirror live-plane counters (hub, mirror, spool) into the registry.

        The plane's ``finalize`` covers everything a simulated cluster
        has; these are the extra truths only a socket-backed peer knows.
        """
        registry = self.plane.registry
        labels = {"node": self.local}
        registry.counter(
            "repro_live_bytes_tx_total", labels, help="Bytes written to peer sockets"
        ).set_total(self.hub.bytes_tx)
        registry.counter(
            "repro_live_bytes_rx_total", labels, help="Bytes read from peer sockets"
        ).set_total(self.hub.bytes_rx)
        registry.counter(
            "repro_live_bytes_verified_total",
            labels,
            help="Payload bytes checked against the sender's pattern",
        ).set_total(self.mirror.bytes_verified)
        registry.counter(
            "repro_live_corrupt_slices_total",
            labels,
            help="Payload slices that failed verification",
        ).set_total(self.mirror.corrupt_slices)
        if self.spool is not None:
            registry.counter(
                "repro_trace_spool_dropped_total",
                labels,
                help="Trace events dropped by the streaming spool",
            ).set_total(self.spool.dropped)
        hub = self.hub
        registry.counter(
            "repro_live_retransmits_total",
            labels,
            help="Enveloped records re-sent after an RTO expiry",
        ).set_total(hub.stats.retransmits)
        registry.counter(
            "repro_live_reconnects_total",
            labels,
            help="Peer connections re-established after a loss",
        ).set_total(hub.reconnects)
        registry.counter(
            "repro_live_disconnects_total",
            labels,
            help="Peer connections lost (EOF, error, or injected close)",
        ).set_total(hub.disconnects)
        registry.counter(
            "repro_live_heartbeats_sent_total",
            labels,
            help="Liveness beacons written to peer sockets",
        ).set_total(hub.heartbeats_sent)
        registry.counter(
            "repro_live_dups_discarded_total",
            labels,
            help="Duplicate enveloped records dropped by the receive ledger",
        ).set_total(hub.stats.dups_discarded)
        registry.counter(
            "repro_live_corrupt_frames_total",
            labels,
            help="Records discarded by the tolerant stream decoders",
        ).set_total(hub.corrupt_frames)
        registry.counter(
            "repro_live_abandoned_messages_total",
            labels,
            help="Submitted messages abandoned because their destination died",
        ).set_total(hub.abandoned)
        registry.counter(
            "repro_live_blackholed_total",
            labels,
            help="Packets addressed to a declared-dead peer",
        ).set_total(hub.blackholed)
        if self.chaos is not None:
            chaos = hub.chaos_stats()
            for key, metric, text in (
                ("drops", "repro_chaos_drops_total", "Records dropped"),
                ("corruptions", "repro_chaos_corruptions_total", "Records corrupted"),
                ("duplicates", "repro_chaos_duplicates_total", "Records duplicated"),
                ("disconnects", "repro_chaos_disconnects_total", "Connections closed"),
            ):
                registry.counter(
                    metric, labels, help=f"{text} by the chaos injectors"
                ).set_total(chaos[key])
        if self.tuner is not None:
            stats = self.tuner.stats
            for value, metric, text in (
                (
                    stats.decisions,
                    "repro_tuner_decisions_total",
                    "Decisions observed by the online tuner",
                ),
                (
                    stats.specialized,
                    "repro_tuner_specialized_total",
                    "Decisions served from a specialized fast path",
                ),
                (
                    stats.installs,
                    "repro_tuner_installs_total",
                    "Specializations synthesized and installed",
                ),
                (
                    stats.invalidations,
                    "repro_tuner_invalidations_total",
                    "Specializations torn down (drift, sweep, or tail shift)",
                ),
            ):
                registry.counter(metric, labels, help=text).set_total(value)

    def report(self) -> dict[str, Any]:
        """The final REPORT payload: records, counters, apps, trace."""
        if self.sampler is not None:
            self.sampler.stop()
        self.plane.finalize()
        self._mirror_live_metrics()
        records = [
            {
                "message_id": r.message_id,
                "flow_name": r.flow_name,
                "traffic_class": r.traffic_class.value,
                "src": r.src,
                "dst": r.dst,
                "size": r.size,
                "fragments": r.fragments,
                "submit_time": r.submit_time,
                "complete_time": r.complete_time,
            }
            for r in self.metrics.records
        ]
        es = self.engine.stats
        engine_stats = {
            "messages_submitted": es.messages_submitted,
            "dispatches": es.dispatches,
            "data_packets": es.data_packets,
            "data_segments": es.data_segments,
            "aggregated_packets": es.aggregated_packets,
            "holds": es.holds,
            "rdv_parked": es.rdv_parked,
            "rdv_timeouts": es.rdv_timeouts,
            "failovers": es.failovers,
            "activations": dict(es.activations),
        }
        nics = [
            {
                "name": nic.name,
                "requests": nic.stats.requests,
                "payload_bytes": nic.stats.payload_bytes,
                "wire_bytes": nic.stats.wire_bytes,
                "busy_time": nic.stats.busy_time,
                "modeled_busy_time": nic.modeled_busy_time,
                "host_time": nic.stats.host_time,
                "segments": nic.stats.segments,
                "drains": nic.drains,
            }
            for nic in self.node.nics
        ]
        apps = []
        for app in self.apps:
            entry: dict[str, Any] = {"name": app.name, "kind": type(app).__name__}
            rtts = getattr(app, "rtts", None)
            if rtts:
                entry["rtts"] = list(rtts)
            apps.append(entry)
        # Trace tail: everything still in the spool.  When the
        # coordinator streamed with FLUSH this is only the events since
        # the last drain; when it never flushed (legacy path) it is the
        # whole run, bounded solely by the spool capacity — and the
        # drop counters say so honestly instead of silently capping.
        trace_events = self.spool.drain() if self.spool is not None else []
        ring = self.plane.sink
        exemplars = (
            self.plane.tail_exemplars.snapshot()
            if self.plane.tail_exemplars is not None
            else None
        )
        return {
            "type": "report",
            "node": self.local,
            "now": self.clock.refresh(),
            "records": records,
            "engine": engine_stats,
            "nics": nics,
            "transport": {
                "bytes_tx": self.hub.bytes_tx,
                "bytes_rx": self.hub.bytes_rx,
                "bytes_verified": self.mirror.bytes_verified,
                "corrupt_slices": self.mirror.corrupt_slices,
                "submitted": self.hub.submitted,
                "done_sent": self.hub.done_sent,
                "done_received": self.hub.done_received,
                "abandoned": self.hub.abandoned,
                "blackholed": self.hub.blackholed,
                "done_suppressed": self.hub.done_suppressed,
                "done_by_dst": dict(self.hub.done_by_dst),
                "done_rx_by_src": dict(self.hub.done_rx_by_src),
                "retransmits": self.hub.stats.retransmits,
                "dups_discarded": self.hub.stats.dups_discarded,
                "reorder_held": self.hub.stats.reorder_held,
                "acks_sent": self.hub.stats.acks_sent,
                "acks_dropped": self.hub.stats.acks_dropped,
                "exhausted": self.hub.stats.exhausted,
                "corrupt_frames": self.hub.corrupt_frames,
                "reconnects": self.hub.reconnects,
                "disconnects": self.hub.disconnects,
                "heartbeats_sent": self.hub.heartbeats_sent,
                "lost_frames": self.hub.lost_frames,
                "dead": sorted(self.hub.dead_nodes),
            },
            "chaos": self.hub.chaos_stats() if self.chaos is not None else None,
            "apps": apps,
            "trace": [event_to_dict(e) for e in trace_events],
            "trace_dropped": self.spool.dropped if self.spool is not None else 0,
            "trace_seen": ring.seen if ring is not None else 0,
            "ring_dropped": ring.dropped if ring is not None else 0,
            "streamed": self._flushed,
            "metrics": self.plane.registry.to_snapshot(),
            "exemplars": exemplars,
            "fatal": self.hub.fatal,
        }


# --------------------------------------------------------------------------
# process entry point
# --------------------------------------------------------------------------


def _reply(obj: dict[str, Any]) -> None:
    sys.stdout.write(json.dumps(obj) + "\n")
    sys.stdout.flush()


def _stdin_reader(loop: asyncio.AbstractEventLoop, queue: asyncio.Queue) -> None:
    for line in sys.stdin:
        loop.call_soon_threadsafe(queue.put_nowait, line)
    loop.call_soon_threadsafe(queue.put_nowait, None)


async def _control_loop() -> int:
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue()
    threading.Thread(target=_stdin_reader, args=(loop, queue), daemon=True).start()

    peer: LivePeer | None = None
    while True:
        line = await queue.get()
        if line is None:
            return 0 if peer is None else 2  # coordinator vanished
        try:
            msg = json.loads(line)
        except json.JSONDecodeError:
            _reply({"type": "error", "error": f"bad control line: {line!r}"})
            continue
        kind = msg.get("type")
        try:
            if kind == "config":
                peer = LivePeer(msg)
                endpoint = await peer.hub.serve(
                    msg.get("transport", "uds"), msg["workdir"]
                )
                # Belt-and-braces self-destruct if the coordinator never
                # gets to STOP (its own watchdog should fire first).
                loop.call_later(peer.timeout * 1.5, os._exit, 3)
                _reply({"type": "ready", "endpoint": endpoint, "node": peer.local})
            elif kind == "mesh":
                assert peer is not None
                endpoints = msg["endpoints"]
                for rank_str, endpoint in endpoints.items():
                    rank = int(rank_str)
                    if rank < peer.rank:
                        await peer.hub.connect(peer.names[rank], endpoint)
                expected = {n for n in peer.names if n != peer.local}
                await asyncio.wait_for(
                    peer.hub.await_mesh(expected), timeout=peer.timeout
                )
                _reply({"type": "mesh_ok"})
            elif kind == "start":
                assert peer is not None
                count = peer.install_apps()
                _reply({"type": "started", "apps": count})
            elif kind == "status":
                assert peer is not None
                _reply(peer.status())
            elif kind == "peer_down":
                assert peer is not None
                result = peer.mark_dead([str(n) for n in msg.get("nodes", [])])
                _reply({"type": "peer_down_ok", **result})
            elif kind == "flush":
                assert peer is not None
                _reply(peer.flush())
            elif kind == "stop":
                assert peer is not None
                _reply(peer.report())
                peer.hub.close()
                return 0
            else:
                _reply({"type": "error", "error": f"unknown control type {kind!r}"})
        except SystemExit:
            raise
        except BaseException:
            _reply({"type": "error", "error": traceback.format_exc()})
            return 1


def main() -> int:
    """Entry point for ``python -m repro.live.peer``."""
    return asyncio.run(_control_loop())


if __name__ == "__main__":
    sys.exit(main())
