"""One live peer process: a single node of the engine stack over sockets.

Run as ``python -m repro.live.peer`` by the coordinator
(:mod:`repro.live.cluster`); never started by hand.  The peer speaks a
JSON-lines control protocol on stdin/stdout::

    CONFIG  -> READY {endpoint}          build the stack, bind a server
    MESH    -> MESH_OK                   connect to lower ranks, await rest
    START   -> STARTED                   install workload apps
    STATUS  -> STATUS {quiet, counters}  quiescence polling
    FLUSH   -> FLUSHED {events, metrics} drain trace spool + registry snapshot
    STOP    -> REPORT {...}              final records + counters, then exit

Inside, the peer assembles the *same* stack the simulated
:class:`~repro.runtime.cluster.Cluster` builds — NICs, drivers from the
registry, an unmodified :class:`~repro.core.engine.OptimizingEngine` (or
the legacy baseline), reassembler, :class:`~repro.madeleine.api.MadAPI`
— except the NICs are :class:`~repro.live.nic.LiveNIC`\\ s whose idle
transition is a socket-drain event, and time is a
:class:`~repro.live.loop.LiveClock` over asyncio.

**Symmetry rule.**  Every peer builds the *entire* scenario — all flows,
all apps — but only its own node gets a real engine; remote nodes get
stubs whose ``submit_message`` is a no-op.  Because every flow is opened
synchronously during app install, before any traffic, the module-level
flow-id counter assigns identical ids on every peer, which is what lets
a wire descriptor's ``flow`` field resolve to the right local
:class:`~repro.madeleine.message.Flow` object.  Processes driving a
remote node's half of a workload simply stall on futures that never
resolve locally; global termination is detected by counter agreement
(messages submitted == deliveries acknowledged), not by app completion.
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import threading
import traceback
from collections import deque
from typing import Any, Callable

from repro.core.config import EngineConfig
from repro.core.strategies.base import make_strategy
from repro.drivers.registry import make_driver
from repro.madeleine.api import MadAPI
from repro.madeleine.message import Flow, Message
from repro.madeleine.rx import MessageReassembler
from repro.network.fabric import Node
from repro.network.technologies import TECHNOLOGIES
from repro.network.virtual import TrafficClass
from repro.network.wire import META_CORR, META_SENT_AT, META_VIA
from repro.obs.plane import ObservabilityConfig, ObservabilityPlane
from repro.runtime.metrics import MetricsCollector
from repro.util.errors import ConfigurationError, ProtocolError
from repro.util.rng import SeedSequenceRegistry
from repro.util.tracing import Tracer, event_to_dict

from repro.live.loop import LiveClock
from repro.live.nic import LiveNIC
from repro.live.observe import LiveSampler, PeerClusterAdapter, SpoolSink
from repro.live.transport import (
    MirrorReceiver,
    StreamDecoder,
    done_frame,
    hello_frame,
    live_ctrl_kind,
)

__all__ = ["LivePeer", "main"]

_READ_CHUNK = 1 << 16

#: Default flight-recorder window when the scenario does not size one.
#: Unlike the old hard REPORT cap, this never truncates what the
#: coordinator sees — streaming flushes carry the full event stream —
#: it only bounds the in-peer crash recorder.
_RING_DEFAULT = 50_000


def _node_names(n: int) -> list[str]:
    return [f"n{i}" for i in range(n)]


# --------------------------------------------------------------------------
# socket hub: the peer's connections to every other peer
# --------------------------------------------------------------------------


class _Connection:
    """One socket to one peer: a single pump task + a reader task.

    asyncio's ``StreamWriter.drain`` supports exactly one concurrent
    waiter, so all outbound records funnel through one pump coroutine;
    NIC submits enqueue ``(bytes, on_drained)`` and the pump invokes the
    callback once the kernel accepted every byte (write-buffer high-water
    mark is 0, so ``drain`` returning *means* drained).
    """

    def __init__(self, hub: "Hub", reader, writer, name: str | None) -> None:
        self.hub = hub
        self.reader = reader
        self.writer = writer
        self.name = name  # peer node name; None until its HELLO arrives
        self.decoder = StreamDecoder()
        self.outbound: deque[tuple[bytes, Callable[[], None] | None]] = deque()
        self._wake = asyncio.Event()
        writer.transport.set_write_buffer_limits(0)
        self._tasks = [
            asyncio.ensure_future(self._pump()),
            asyncio.ensure_future(self._read()),
        ]

    def enqueue(self, data: bytes, on_drained: Callable[[], None] | None) -> None:
        self.outbound.append((data, on_drained))
        self.hub.writes_in_flight += 1
        self._wake.set()

    async def _pump(self) -> None:
        try:
            while True:
                while not self.outbound:
                    self._wake.clear()
                    await self._wake.wait()
                data, on_drained = self.outbound.popleft()
                self.writer.write(data)
                await self.writer.drain()
                self.hub.bytes_tx += len(data)
                self.hub.clock.refresh()
                self.hub.writes_in_flight -= 1
                if on_drained is not None:
                    on_drained()
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception:  # pragma: no cover - surfaced via STATUS
            self.hub.note_fatal(traceback.format_exc())

    async def _read(self) -> None:
        try:
            while True:
                chunk = await self.reader.read(_READ_CHUNK)
                if not chunk:
                    return
                self.hub.bytes_rx += len(chunk)
                self.hub.clock.refresh()
                for frame in self.decoder.feed(chunk):
                    self.hub.handle_frame(frame, self)
        except (ConnectionError, asyncio.CancelledError):
            pass
        except Exception:  # pragma: no cover - surfaced via STATUS
            self.hub.note_fatal(traceback.format_exc())

    def close(self) -> None:
        for task in self._tasks:
            task.cancel()
        try:
            self.writer.close()
        except Exception:  # pragma: no cover - teardown best-effort
            pass


class Hub:
    """All-to-all socket mesh plus sender-side delivery bookkeeping."""

    def __init__(self, clock: LiveClock, node_name: str, rank: int, deliver) -> None:
        self.clock = clock
        self.node_name = node_name
        self.rank = rank
        self._deliver = deliver  # deliver(frame): engine/data traffic
        self._conns: dict[str, _Connection] = {}
        self._anonymous: list[_Connection] = []
        self._mesh_ready = asyncio.Event()
        self._expected: set[str] = set()
        self._server = None
        self.writes_in_flight = 0
        self.bytes_tx = 0
        self.bytes_rx = 0
        #: Locally submitted messages awaiting a DONE acknowledgement.
        self.sent_messages: dict[int, Message] = {}
        self.submitted = 0
        self.done_sent = 0
        self.done_received = 0
        self.fatal: str | None = None

    def note_fatal(self, text: str) -> None:
        """Record the first transport fault; surfaced via STATUS polls."""
        if self.fatal is None:
            self.fatal = text

    # -- server / mesh -------------------------------------------------
    async def serve(self, transport: str, workdir: str) -> dict[str, Any]:
        """Bind the listening socket; returns the endpoint descriptor."""
        if transport == "uds":
            path = f"{workdir}/p{self.rank}.sock"
            self._server = await asyncio.start_unix_server(self._on_accept, path=path)
            return {"kind": "uds", "path": path}
        if transport == "tcp":
            self._server = await asyncio.start_server(self._on_accept, "127.0.0.1", 0)
            host, port = self._server.sockets[0].getsockname()[:2]
            return {"kind": "tcp", "host": host, "port": port}
        raise ConfigurationError(f"unknown live transport {transport!r}")

    def _on_accept(self, reader, writer) -> None:
        self._anonymous.append(_Connection(self, reader, writer, None))

    async def connect(self, peer_name: str, endpoint: dict[str, Any]) -> None:
        """Dial one peer's endpoint and introduce ourselves with a HELLO."""
        if endpoint["kind"] == "uds":
            reader, writer = await asyncio.open_unix_connection(endpoint["path"])
        else:
            reader, writer = await asyncio.open_connection(
                endpoint["host"], endpoint["port"]
            )
        conn = _Connection(self, reader, writer, peer_name)
        self._register(peer_name, conn)
        conn.enqueue(hello_frame(self.node_name, self.rank), None)

    def _register(self, name: str, conn: _Connection) -> None:
        conn.name = name
        existing = self._conns.get(name)
        if existing is not None and existing is not conn:
            raise ProtocolError(f"duplicate connection from peer {name!r}")
        self._conns[name] = conn
        if self._expected and self._expected.issubset(self._conns):
            self._mesh_ready.set()

    async def await_mesh(self, expected: set[str]) -> None:
        """Block until a connection to every expected peer is identified."""
        self._expected = set(expected)
        if self._expected.issubset(self._conns):
            return
        await self._mesh_ready.wait()

    # -- sending -------------------------------------------------------
    def send_packet(self, packet, data: bytes, on_drained) -> None:
        """NIC path: ship one engine packet to its destination peer."""
        conn = self._conns.get(packet.dst)
        if conn is None:
            raise ProtocolError(
                f"no live connection from {self.node_name!r} to {packet.dst!r}"
            )
        for segment in packet.segments:
            message = segment.payload.message
            if message.message_id not in self.sent_messages:
                self.sent_messages[message.message_id] = message
                self.submitted += 1
        conn.enqueue(data, on_drained)

    def send_done(self, dst: str, message_id: int, when: float) -> None:
        """Acknowledge a completed delivery back to its sender."""
        conn = self._conns.get(dst)
        if conn is None:
            raise ProtocolError(f"cannot acknowledge to unknown peer {dst!r}")
        self.done_sent += 1
        conn.enqueue(done_frame(self.node_name, dst, [(message_id, when)]), None)

    # -- receiving -----------------------------------------------------
    def handle_frame(self, frame, conn: _Connection) -> None:
        """Route one decoded frame: transport control here, data onward.

        HELLO identifies an inbound connection; DONE resolves the
        acknowledged messages' completion futures; everything else is
        engine traffic handed to the node's receiver via ``deliver``.
        """
        ctrl = live_ctrl_kind(frame)
        if ctrl == "hello":
            self._register(str(frame.meta["node"]), conn)
            return
        if ctrl == "done":
            for message_id, when in frame.meta.get("items", ()):
                message = self.sent_messages.pop(message_id, None)
                if message is None:
                    continue  # duplicate/late DONE: already accounted
                self.done_received += 1
                if not message.completion.done:
                    message.completion.resolve(float(when))
            return
        self._deliver(frame)

    # -- quiescence / teardown -----------------------------------------
    @property
    def buffered_bytes(self) -> int:
        """Partial frames sitting in any connection's decoder."""
        total = sum(c.decoder.buffered for c in self._conns.values())
        return total + sum(c.decoder.buffered for c in self._anonymous)

    def close(self) -> None:
        """Tear down every connection and the listening server."""
        for conn in self._conns.values():
            conn.close()
        for conn in self._anonymous:
            conn.close()
        if self._server is not None:
            self._server.close()


# --------------------------------------------------------------------------
# the engine stack, assembled for one node
# --------------------------------------------------------------------------


class _StubEngine:
    """Engine stand-in for remote nodes (satisfies CommEngineProtocol).

    A message submitted here belongs to a process that is really running
    on another peer; locally it goes nowhere and the submitting process
    stalls on a future that never resolves — by design.
    """

    def __init__(self, node_name: str) -> None:
        self.node_name = node_name

    def submit_message(self, message: Message) -> None:
        pass

    def post_receive(self, flow: Flow, count: int = 1) -> None:
        pass


class _RegisteringAPI(MadAPI):
    """MadAPI that records every opened flow in a shared id registry.

    The registry is what lets the mirror receiver resolve a wire
    descriptor's flow id back to the local ``Flow`` object.
    """

    def __init__(self, node_name, engine, reassembler, registry: dict[int, Flow]) -> None:
        super().__init__(node_name, engine, reassembler)
        self._registry = registry

    def open_flow(self, dst, name=None, traffic_class=TrafficClass.DEFAULT) -> Flow:
        flow = super().open_flow(dst, name, traffic_class)
        self._registry[flow.flow_id] = flow
        return flow


class _PeerCluster:
    """The cluster facade workload apps program against.

    Apps only touch ``.sim``, ``.api(name)`` and ``.stream(name)`` (see
    :class:`~repro.middleware.base.AppBase`); this provides exactly
    those, backed by the live clock and per-node APIs.
    """

    def __init__(self, sim: LiveClock, apis: dict[str, MadAPI], rng) -> None:
        self.sim = sim
        self.apis = apis
        self.rng = rng

    def api(self, node_name: str) -> MadAPI:
        return self.apis[node_name]

    def stream(self, name: str):
        return self.rng.stream(name)


class LivePeer:
    """Everything one peer process owns; driven by the control protocol."""

    def __init__(self, config: dict[str, Any]) -> None:
        scenario = config["scenario"]
        if scenario.get("faults"):
            raise ConfigurationError(
                "live runs reject the 'faults' block: TCP/UDS transport is "
                "already reliable, injected loss would be double-booked"
            )
        self.rank = int(config["rank"])
        self.n_nodes = int(config["n_nodes"])
        self.scenario = scenario
        self.names = _node_names(self.n_nodes)
        self.local = self.names[self.rank]
        self.timeout = float(config.get("timeout", 60.0))

        obs_spec = dict(config.get("observability") or {})
        obs_spec.setdefault("trace", bool(config.get("trace")))
        self.obs_config = ObservabilityConfig.from_spec(obs_spec)

        self.tracer = Tracer()
        loop = asyncio.get_running_loop()
        self.clock = LiveClock(
            loop,
            epoch=float(config["epoch"]),
            time_scale=float(config.get("time_scale", 1.0)),
            tracer=self.tracer,
        )
        self.hub = Hub(self.clock, self.local, self.rank, self._deliver_frame)
        self.flows: dict[int, Flow] = {}
        self.mirror = MirrorReceiver(self.local, self.flows.get)
        self.metrics = MetricsCollector()
        self.apps: list = []
        self._apps_installed = False
        #: Data frames that raced ahead of this peer's START (see
        #: ``_deliver_frame``); replayed once the flows exist.
        self._pre_start_frames: list = []
        self._build_stack()
        self._install_observability()

    def _install_observability(self) -> None:
        """Attach the full observability plane to this peer's stack.

        The plane gets a sampler-less config — its base sampler lives on
        the simulator event queue, which on a live clock would pin
        ``pending_timers`` above zero and defeat quiescence detection —
        and a :class:`LiveSampler` is driven off raw loop timers instead.
        The spool is the streaming buffer the coordinator drains with
        FLUSH requests; the plane's ring buffer stays as the bounded
        in-process flight recorder.
        """
        ring = self.obs_config.ring_buffer
        self.plane = ObservabilityPlane(
            ObservabilityConfig(
                sample_interval=None,
                ring_buffer=ring if ring is not None else _RING_DEFAULT,
                trace=self.obs_config.trace,
            )
        )
        self.obs_adapter = PeerClusterAdapter(
            self.clock, self.engine, self.node, self.reassembler
        )
        self.plane.install(self.obs_adapter)
        self.spool: SpoolSink | None = None
        if self.obs_config.trace:
            self.spool = SpoolSink()
            self.tracer.subscribe(self.spool)
        self.sampler: LiveSampler | None = None
        if self.obs_config.sample_interval is not None:
            self.sampler = LiveSampler(
                self.obs_adapter,
                self.obs_config.sample_interval,
                registry=self.plane.registry,
                source=f"obs:{self.local}",
            )
        self._flushed = False

    # -- construction --------------------------------------------------
    def _build_stack(self) -> None:
        spec = dict(self.scenario.get("cluster", {}))
        engine_kind = spec.get("engine", "optimizing")
        networks = [tuple(net) for net in spec.get("networks", [("mx", 1)])]
        seed = spec.get("seed", 0)

        self.node = Node(self.clock, self.local)
        for i, (tech, per_node) in enumerate(networks):
            if tech not in TECHNOLOGIES:
                raise ConfigurationError(
                    f"unknown technology {tech!r} (known: {sorted(TECHNOLOGIES)})"
                )
            link = TECHNOLOGIES[tech]()
            for idx in range(per_node):
                self.node.nics.append(
                    LiveNIC(
                        self.clock,
                        f"{self.local}.{tech}{i}{idx}",
                        self.local,
                        link,
                        self.hub.send_packet,
                    )
                )
        drivers = [make_driver(nic) for nic in self.node.nics]

        config_spec = spec.get("config")
        engine_config = EngineConfig(**config_spec) if config_spec else None
        kwargs: dict[str, Any] = {"config": engine_config}
        if engine_kind == "optimizing":
            from repro.core.engine import OptimizingEngine as engine_cls
            from repro.runtime.scenario import POLICY_TYPES

            strategy_name = spec.get("strategy")
            kwargs["strategy"] = (
                make_strategy(strategy_name) if strategy_name is not None else None
            )
            policy_name = spec.get("policy")
            if policy_name is not None:
                kwargs["policy"] = POLICY_TYPES[policy_name]()
        elif engine_kind == "legacy":
            from repro.baseline.legacy import LegacyEngine as engine_cls
        else:
            raise ConfigurationError(f"unknown engine kind {engine_kind!r}")
        self.engine = engine_cls(self.clock, self.node, drivers, **kwargs)

        self.reassembler = MessageReassembler(self.clock, self.local)
        self.node.receiver.register_default_sink(self.reassembler.sink)
        self.metrics.attach(self.reassembler)
        # Chain-wrap the reassembler's single completion slot: metrics
        # first (records the delivery), then the DONE acknowledgement
        # back to the sender so it can resolve the original message.
        record = self.reassembler.on_message_complete

        def on_complete(message: Message, now: float) -> None:
            record(message, now)
            origin = self.mirror.origin_of(message)
            if origin is not None:
                src, sender_mid = origin
                self.hub.send_done(src, sender_mid, now)
                self.mirror.forget(message)

        self.reassembler.on_message_complete = on_complete

        self.apis: dict[str, MadAPI] = {
            self.local: _RegisteringAPI(
                self.local, self.engine, self.reassembler, self.flows
            )
        }
        for name in self.names:
            if name == self.local:
                continue
            stub_rx = MessageReassembler(self.clock, name)
            self.apis[name] = _RegisteringAPI(
                name, _StubEngine(name), stub_rx, self.flows
            )
        self.facade = _PeerCluster(self.clock, self.apis, SeedSequenceRegistry(seed))

    # -- inbound engine traffic ----------------------------------------
    def _deliver_frame(self, frame) -> None:
        # START is delivered peer by peer, so a fast peer's first data
        # frame can land here before *this* peer has installed its apps
        # (and therefore registered its flows).  Park such frames and
        # replay them from install_apps — decoding one now would die on
        # "unknown flow id".
        if not self._apps_installed:
            self._pre_start_frames.append(frame)
            return
        if self.tracer.enabled and META_CORR in frame.meta:
            # The receive half of a wire crossing: carries the sender's
            # correlation id and clock so the coordinator can match it
            # to the exact nic.send span on the sending peer.
            self.tracer.emit(
                self.clock.now,
                f"live:{self.local}",
                "live.recv",
                corr=frame.meta[META_CORR],
                src=frame.src,
                dst=self.local,
                via=frame.meta.get(META_VIA),
                sent_at=frame.meta.get(META_SENT_AT),
                packet_kind=frame.kind.value,
                segments=len(frame.segments),
                bytes=sum(seg.length for seg in frame.segments),
            )
        packet = self.mirror.packet_from_frame(frame)
        self.node.receiver.deliver(packet)

    # -- control-protocol steps ----------------------------------------
    def install_apps(self) -> int:
        """Build and install every scenario workload; returns the count.

        Installation opens all flows synchronously (the symmetry rule in
        the module docstring) and starts the app processes — traffic
        begins as soon as the event loop runs.
        """
        from repro.runtime.scenario import _build_app

        workloads = self.scenario.get("workloads", [])
        if not workloads:
            raise ConfigurationError("scenario has no workloads")
        for entry in workloads:
            app = _build_app(entry)
            app.install(self.facade)
            self.apps.append(app)
        if self.sampler is not None:
            self.sampler.start()
        self._apps_installed = True
        if self._pre_start_frames:
            early, self._pre_start_frames = self._pre_start_frames, []
            for frame in early:
                self._deliver_frame(frame)
        return len(self.apps)

    @property
    def quiet(self) -> bool:
        """No local activity is pending or in flight.

        The live analogue of an empty simulator event queue: nothing in
        the waiting lists, no hold timer, no handshake awaiting a reply,
        every NIC idle, no half-reassembled message, no armed clock
        timer, no bytes the kernel has not accepted, and no partial
        frame in any stream decoder.  Cross-peer bytes still in flight
        are caught by the coordinator's counter-agreement check, not
        here.
        """
        engine = self.engine
        return (
            engine.backlog == 0
            and not engine.hold_timer_armed
            and engine.rendezvous_in_flight == 0
            and engine.deferred_rendezvous == 0
            and all(nic.idle for nic in self.node.nics)
            and self.reassembler.incomplete_messages == 0
            and self.clock.pending_timers == 0
            and self.hub.writes_in_flight == 0
            and self.hub.buffered_bytes == 0
        )

    def status(self) -> dict[str, Any]:
        """One STATUS reply: quiescence flag plus delivery counters.

        ``now`` is this peer's clock at reply time; the coordinator
        brackets the request with its own clock readings to estimate the
        peer's offset (round-trip midpoint, see :mod:`repro.obs.merge`).
        """
        return {
            "type": "status",
            "quiet": self.quiet,
            "now": self.clock.refresh(),
            "submitted": self.hub.submitted,
            "done_sent": self.hub.done_sent,
            "done_received": self.hub.done_received,
            "fatal": self.hub.fatal,
        }

    def flush(self) -> dict[str, Any]:
        """One FLUSH reply: stream everything captured since the last one.

        Drains the spool (trace events) and snapshots the registry, so
        the coordinator's merged view — and its ``/metrics`` endpoint —
        stay current while the run is in flight.  Once any flush has
        happened the final REPORT only carries the tail, never a
        re-send.
        """
        self._flushed = True
        events = self.spool.drain() if self.spool is not None else []
        # set_total is monotonic, so re-mirroring every flush is safe and
        # keeps the in-flight /metrics view from reading all-zero until
        # the final report.
        self._mirror_live_metrics()
        return {
            "type": "flushed",
            "node": self.local,
            "now": self.clock.refresh(),
            "events": [event_to_dict(e) for e in events],
            "spool_dropped": self.spool.dropped if self.spool is not None else 0,
            "metrics": self.plane.registry.to_snapshot(),
        }

    def _mirror_live_metrics(self) -> None:
        """Mirror live-plane counters (hub, mirror, spool) into the registry.

        The plane's ``finalize`` covers everything a simulated cluster
        has; these are the extra truths only a socket-backed peer knows.
        """
        registry = self.plane.registry
        labels = {"node": self.local}
        registry.counter(
            "repro_live_bytes_tx_total", labels, help="Bytes written to peer sockets"
        ).set_total(self.hub.bytes_tx)
        registry.counter(
            "repro_live_bytes_rx_total", labels, help="Bytes read from peer sockets"
        ).set_total(self.hub.bytes_rx)
        registry.counter(
            "repro_live_bytes_verified_total",
            labels,
            help="Payload bytes checked against the sender's pattern",
        ).set_total(self.mirror.bytes_verified)
        registry.counter(
            "repro_live_corrupt_slices_total",
            labels,
            help="Payload slices that failed verification",
        ).set_total(self.mirror.corrupt_slices)
        if self.spool is not None:
            registry.counter(
                "repro_trace_spool_dropped_total",
                labels,
                help="Trace events dropped by the streaming spool",
            ).set_total(self.spool.dropped)

    def report(self) -> dict[str, Any]:
        """The final REPORT payload: records, counters, apps, trace."""
        if self.sampler is not None:
            self.sampler.stop()
        self.plane.finalize()
        self._mirror_live_metrics()
        records = [
            {
                "message_id": r.message_id,
                "flow_name": r.flow_name,
                "traffic_class": r.traffic_class.value,
                "src": r.src,
                "dst": r.dst,
                "size": r.size,
                "fragments": r.fragments,
                "submit_time": r.submit_time,
                "complete_time": r.complete_time,
            }
            for r in self.metrics.records
        ]
        es = self.engine.stats
        engine_stats = {
            "messages_submitted": es.messages_submitted,
            "dispatches": es.dispatches,
            "data_packets": es.data_packets,
            "data_segments": es.data_segments,
            "aggregated_packets": es.aggregated_packets,
            "holds": es.holds,
            "rdv_parked": es.rdv_parked,
            "rdv_timeouts": es.rdv_timeouts,
            "failovers": es.failovers,
            "activations": dict(es.activations),
        }
        nics = [
            {
                "name": nic.name,
                "requests": nic.stats.requests,
                "payload_bytes": nic.stats.payload_bytes,
                "wire_bytes": nic.stats.wire_bytes,
                "busy_time": nic.stats.busy_time,
                "modeled_busy_time": nic.modeled_busy_time,
                "host_time": nic.stats.host_time,
                "segments": nic.stats.segments,
                "drains": nic.drains,
            }
            for nic in self.node.nics
        ]
        apps = []
        for app in self.apps:
            entry: dict[str, Any] = {"name": app.name, "kind": type(app).__name__}
            rtts = getattr(app, "rtts", None)
            if rtts:
                entry["rtts"] = list(rtts)
            apps.append(entry)
        # Trace tail: everything still in the spool.  When the
        # coordinator streamed with FLUSH this is only the events since
        # the last drain; when it never flushed (legacy path) it is the
        # whole run, bounded solely by the spool capacity — and the
        # drop counters say so honestly instead of silently capping.
        trace_events = self.spool.drain() if self.spool is not None else []
        ring = self.plane.sink
        return {
            "type": "report",
            "node": self.local,
            "now": self.clock.refresh(),
            "records": records,
            "engine": engine_stats,
            "nics": nics,
            "transport": {
                "bytes_tx": self.hub.bytes_tx,
                "bytes_rx": self.hub.bytes_rx,
                "bytes_verified": self.mirror.bytes_verified,
                "corrupt_slices": self.mirror.corrupt_slices,
                "submitted": self.hub.submitted,
                "done_sent": self.hub.done_sent,
                "done_received": self.hub.done_received,
            },
            "apps": apps,
            "trace": [event_to_dict(e) for e in trace_events],
            "trace_dropped": self.spool.dropped if self.spool is not None else 0,
            "trace_seen": ring.seen if ring is not None else 0,
            "ring_dropped": ring.dropped if ring is not None else 0,
            "streamed": self._flushed,
            "metrics": self.plane.registry.to_snapshot(),
            "fatal": self.hub.fatal,
        }


# --------------------------------------------------------------------------
# process entry point
# --------------------------------------------------------------------------


def _reply(obj: dict[str, Any]) -> None:
    sys.stdout.write(json.dumps(obj) + "\n")
    sys.stdout.flush()


def _stdin_reader(loop: asyncio.AbstractEventLoop, queue: asyncio.Queue) -> None:
    for line in sys.stdin:
        loop.call_soon_threadsafe(queue.put_nowait, line)
    loop.call_soon_threadsafe(queue.put_nowait, None)


async def _control_loop() -> int:
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue()
    threading.Thread(target=_stdin_reader, args=(loop, queue), daemon=True).start()

    peer: LivePeer | None = None
    while True:
        line = await queue.get()
        if line is None:
            return 0 if peer is None else 2  # coordinator vanished
        try:
            msg = json.loads(line)
        except json.JSONDecodeError:
            _reply({"type": "error", "error": f"bad control line: {line!r}"})
            continue
        kind = msg.get("type")
        try:
            if kind == "config":
                peer = LivePeer(msg)
                endpoint = await peer.hub.serve(
                    msg.get("transport", "uds"), msg["workdir"]
                )
                # Belt-and-braces self-destruct if the coordinator never
                # gets to STOP (its own watchdog should fire first).
                loop.call_later(peer.timeout * 1.5, os._exit, 3)
                _reply({"type": "ready", "endpoint": endpoint, "node": peer.local})
            elif kind == "mesh":
                assert peer is not None
                endpoints = msg["endpoints"]
                for rank_str, endpoint in endpoints.items():
                    rank = int(rank_str)
                    if rank < peer.rank:
                        await peer.hub.connect(peer.names[rank], endpoint)
                expected = {n for n in peer.names if n != peer.local}
                await asyncio.wait_for(
                    peer.hub.await_mesh(expected), timeout=peer.timeout
                )
                _reply({"type": "mesh_ok"})
            elif kind == "start":
                assert peer is not None
                count = peer.install_apps()
                _reply({"type": "started", "apps": count})
            elif kind == "status":
                assert peer is not None
                _reply(peer.status())
            elif kind == "flush":
                assert peer is not None
                _reply(peer.flush())
            elif kind == "stop":
                assert peer is not None
                _reply(peer.report())
                peer.hub.close()
                return 0
            else:
                _reply({"type": "error", "error": f"unknown control type {kind!r}"})
        except SystemExit:
            raise
        except BaseException:
            _reply({"type": "error", "error": traceback.format_exc()})
            return 1


def main() -> int:
    """Entry point for ``python -m repro.live.peer``."""
    return asyncio.run(_control_loop())


if __name__ == "__main__":
    sys.exit(main())
