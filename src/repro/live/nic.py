"""A NIC whose busy/idle state machine is a real socket's send buffer.

:class:`LiveNIC` subclasses the simulated :class:`~repro.network.nic.NIC`
and keeps its *entire* contract — same ``submit`` signature the drivers
call, same validation, same stats counters, same ``on_idle``
subscription the optimizing engine uses as its activation trigger, same
refill-break semantics in ``_complete``.  What changes is what "busy"
means:

* simulated: busy for a *modeled* ``occupancy`` computed from the
  :class:`~repro.network.model.LinkModel`;
* live: busy until the kernel accepted every byte of the encoded packet
  (the asyncio writer's buffer drained with its high-water mark at 0).

The paper's activation discipline — "the scheduler is activated when a
NIC becomes idle" — therefore maps onto the drain event, and the backlog
that accumulates while the socket is back-pressured is exactly the
aggregation opportunity the optimizer exploits.

The driver still computes its modeled ``(occupancy, one_way)`` pair;
``LiveNIC`` records the modeled occupancy separately
(:attr:`modeled_busy_time`) but accounts ``stats.busy_time`` from the
*measured* wall-clock drain time, so NIC utilisation in live reports
reflects reality, not the model.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.network.model import LinkModel
from repro.network.nic import NIC
from repro.network.wire import (
    META_CORR,
    META_SENT_AT,
    META_VIA,
    WirePacket,
    correlation_id,
)
from repro.util.errors import InternalError, SimulationError

from repro.live.loop import LiveClock
from repro.live.transport import encode_live_packet

__all__ = ["LiveNIC"]

#: ``send(packet, encoded_bytes, on_drained)`` — enqueue the bytes for
#: the packet's destination and invoke ``on_drained`` (from the event
#: loop, after a clock refresh) once the kernel has accepted them all.
SendFn = Callable[[WirePacket, bytes, Callable[[], None]], None]


class LiveNIC(NIC):
    """One socket-backed rail of a live peer.

    ``send`` is provided by the peer's connection hub; the NIC neither
    owns nor sees sockets — it sees "bytes accepted" completions, which
    it translates into the idle transitions the engine subscribes to.
    """

    def __init__(
        self,
        clock: LiveClock,
        name: str,
        node_name: str,
        link: LinkModel,
        send: SendFn,
    ) -> None:
        super().__init__(clock, name, node_name, link, self._never_deliver)
        self._send = send
        self._clock = clock
        #: Sum of driver-modeled occupancies, for modeled-vs-measured
        #: comparison in live benchmarks (stats.busy_time is measured).
        self.modeled_busy_time = 0.0
        #: Measured drain time of the most recent request (virtual s).
        self.last_drain = 0.0
        self.drains = 0

    @staticmethod
    def _never_deliver(packet: WirePacket, occupancy: float) -> None:
        raise InternalError(
            "LiveNIC delivery goes through sockets; the simulated deliver "
            "path must never run"
        )

    def submit(
        self,
        packet: WirePacket,
        occupancy: float,
        one_way: float,
        host_time: float = 0.0,
    ) -> None:
        """Start one request: encode the packet and hand it to the socket.

        The driver-computed ``occupancy``/``one_way`` keep their
        simulated-path validation (a driver emitting nonsense timings is
        a bug worth catching live too) but only feed
        :attr:`modeled_busy_time`; the busy interval ends when the
        kernel drains the bytes, not when a model says so.
        """
        if self._failed:
            raise SimulationError(f"NIC {self.name!r} submit while failed (rail outage)")
        if self._busy:
            raise SimulationError(f"NIC {self.name!r} submit while busy")
        if occupancy <= 0 or one_way < occupancy:
            raise SimulationError(
                f"NIC {self.name!r}: inconsistent timings occupancy={occupancy}, "
                f"one_way={one_way}"
            )
        if packet.src != self.node_name:
            raise SimulationError(
                f"NIC {self.name!r} on node {self.node_name!r} asked to send a "
                f"packet from {packet.src!r}"
            )
        # Stamp the distributed-tracing keys into the wire meta before
        # encoding, so the receiving peer can correlate its frame-decode
        # record with this exact send (and this exact clock reading).
        # Only when tracing: the keys ride the wire, and untraced runs
        # must not pay their encode cost or byte overhead.
        tracer = self._sim.tracer
        corr = None
        if tracer.enabled:
            corr = correlation_id(self.node_name, packet.packet_id)
            packet.meta[META_CORR] = corr
            packet.meta[META_SENT_AT] = self._sim.now
            packet.meta[META_VIA] = self.name
        # Bare wire-codec frame: the hub owns record framing (plain
        # length prefix, or the reliability envelope under chaos).
        data = encode_live_packet(packet, wrap=False)  # encode before flipping
        # state: a serialization error must leave the NIC idle and usable.

        self._busy = True
        self.stats.requests += 1
        self.stats.payload_bytes += packet.payload_bytes
        self.stats.wire_bytes += packet.wire_bytes
        self.stats.host_time += host_time
        self.stats.segments += packet.segment_count
        self.modeled_busy_time += occupancy
        kind = packet.kind.value
        self.stats.kind_counts[kind] = self.stats.kind_counts.get(kind, 0) + 1

        if tracer.enabled:
            tracer.emit(
                self._sim.now,
                f"nic:{self.name}",
                "nic.send",
                packet=packet.packet_id,
                packet_kind=kind,
                bytes=packet.payload_bytes,
                segments=packet.segment_count,
                dst=packet.dst,
                occupancy=occupancy,
                live_bytes=len(data),
                corr=corr,
            )
        started = time.perf_counter()
        self._send(packet, data, lambda: self._drained(started))

    def _drained(self, started: float) -> None:
        """Kernel accepted every byte: measure, account, go idle.

        Runs on the event loop (the hub refreshes the clock first), so
        the idle-subscriber cascade — the engine's activation — sees a
        current ``now`` and may immediately refill the NIC, which the
        inherited ``_complete`` handles with its refill break.
        """
        measured = (time.perf_counter() - started) / self._clock.time_scale
        self.stats.busy_time += measured
        self.last_drain = measured
        self.drains += 1
        # The inherited _complete() emits nic.idle, which both closes
        # the Perfetto send span and ends the tail recorder's per-rail
        # service-time span (send -> drained, measured not modeled).
        self._complete()
