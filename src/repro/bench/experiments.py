"""Experiment definitions E1–E8 (see DESIGN.md §4 for the paper mapping).

Every function takes ``quick`` (smaller axes/counts for CI) and returns
an :class:`~repro.bench.harness.ExperimentResult`.  The functions also
*assert* the qualitative shape each experiment is supposed to show, so
a regression in the engine turns the benchmark red rather than silently
producing a different table.
"""

from __future__ import annotations

import time

from repro.bench.harness import ExperimentResult
from repro.core.channels import OneToOneChannels, PooledChannels
from repro.core.config import EngineConfig
from repro.core.strategies import BoundedSearchStrategy, NagleStrategy
from repro.middleware import (
    ControlPlaneApp,
    DsmApp,
    GlobalArraysApp,
    PingPongApp,
    StreamApp,
    uniform_small_flows,
)
from repro.network.virtual import TrafficClass
from repro.runtime import Cluster, run_session
from repro.util.tracing import TraceRecorder
from repro.util.units import KiB, MiB, us

__all__ = [
    "ALL_EXPERIMENTS",
    "e10_copy_vs_gather",
    "e11_offered_load",
    "e1_architecture",
    "e2_aggregation",
    "e3_pingpong",
    "e4_lookahead",
    "e5_search_budget",
    "e6_multirail",
    "e7_traffic_classes",
    "e8_nagle",
    "e9_adaptive",
]


# ----------------------------------------------------------------------
# E1 — Figure 1: the three-layer architecture, validated executably
# ----------------------------------------------------------------------
def e1_architecture(quick: bool = False) -> ExperimentResult:
    """Reproduce Figure 1: collect → optimize → transfer over a mixed
    fabric (2×Myrinet + 1×Quadrics), with RDV, PIO and put/get requests
    in flight simultaneously; validate the layer interaction sequence."""
    result = ExperimentResult(
        "E1",
        "Figure 1 — three-layer architecture over 2xMX + 1xElan",
        ["nic", "technology", "requests", "eager", "rdv_data", "control", "busy_us"],
    )
    tracer = TraceRecorder()
    cluster = Cluster(
        networks=[("mx", 2), ("elan", 1)],
        tracer=tracer,
        seed=1,
        config=EngineConfig(stripe_chunk=32 * KiB),
    )
    n = 10 if quick else 40
    apps = [
        StreamApp(size=25 * KiB, count=max(n // 4, 4), interval=4 * us, name="bulkish"),
        StreamApp(size=64, count=n, interval=1 * us, name="tiny"),
        GlobalArraysApp(operations=n, name="putget"),
        StreamApp(size=80 * KiB, count=max(n // 6, 3), interval=8 * us, name="rdvs"),
    ]
    run_session(cluster, [a.install for a in apps])

    # --- layer-interaction checks (the "figure") -----------------------
    kinds = list(tracer.kinds())
    assert "collect.enqueue" in kinds, "collect layer must enqueue"
    assert "optimizer.activate" in kinds, "optimizing layer must activate"
    assert "nic.send" in kinds, "transfer layer must send"
    first_dispatch = kinds.index("engine.dispatch")
    first_collect = kinds.index("collect.enqueue")
    assert first_collect < first_dispatch, "nothing is sent before it is collected"

    activations = tracer.of_kind("optimizer.activate")
    triggers = {e.detail["trigger"] for e in activations}
    assert "idle" in triggers, "NIC-idle transitions must trigger the optimizer"
    max_backlog = max(e.detail["backlog"] for e in activations)
    assert max_backlog > 1, "a backlog must accumulate while NICs are busy"

    parked = tracer.of_kind("rdv.park")
    ready = tracer.of_kind("rdv.ready")
    assert parked and ready, "rendezvous protocol must run"
    assert parked[0].time < ready[0].time

    for node in cluster.fabric.nodes:
        for nic in node.nics:
            stats = nic.stats
            result.add_row(
                nic=nic.name,
                technology=nic.link.name,
                requests=stats.requests,
                eager=stats.kind_counts.get("eager", 0),
                rdv_data=stats.kind_counts.get("rdv_data", 0),
                control=sum(
                    stats.kind_counts.get(k, 0) for k in ("rdv_req", "rdv_ack", "ctrl")
                ),
                busy_us=stats.busy_time * 1e6,
            )
    sender_nics = cluster.fabric.node("n0").nics
    assert all(nic.stats.requests > 0 for nic in sender_nics), "all sender rails used"

    engine_stats = cluster.engine("n0").stats
    result.note(
        f"optimizer activations: {dict(sorted(engine_stats.activations.items()))}"
    )
    result.note(f"max backlog observed at activation: {max_backlog} entries")
    result.note(
        f"aggregation ratio {engine_stats.aggregation_ratio:.2f} segments/packet, "
        f"{engine_stats.rdv_parked} rendezvous"
    )
    from repro.util.timeline import Timeline

    gantt = Timeline.from_trace(tracer).render(width=64)
    result.note("sender NIC activity (Gantt):\n" + gantt)
    return result


# ----------------------------------------------------------------------
# E2 — the headline claim: cross-flow aggregation of eager segments
# ----------------------------------------------------------------------
def e2_aggregation(quick: bool = False) -> ExperimentResult:
    """N independent small-message flows, optimizing vs legacy engine."""
    result = ExperimentResult(
        "E2",
        "cross-flow eager aggregation gain vs number of flows",
        [
            "flows",
            "legacy_MBps",
            "opt_MBps",
            "gain",
            "legacy_tx",
            "opt_tx",
            "opt_agg",
            "legacy_lat_us",
            "opt_lat_us",
        ],
    )
    flow_axis = [1, 2, 4, 8, 16] if quick else [1, 2, 4, 8, 16, 32]
    count = 60 if quick else 200

    def run(engine: str, n_flows: int):
        cluster = Cluster(engine=engine, seed=100 + n_flows)
        apps = uniform_small_flows(n_flows, size=256, count=count, interval=1 * us)
        return run_session(cluster, [a.install for a in apps])

    for n_flows in flow_axis:
        legacy = run("legacy", n_flows)
        optimized = run("optimizing", n_flows)
        result.add_row(
            flows=n_flows,
            legacy_MBps=legacy.throughput / 1e6,
            opt_MBps=optimized.throughput / 1e6,
            gain=optimized.throughput / legacy.throughput,
            legacy_tx=legacy.network_transactions,
            opt_tx=optimized.network_transactions,
            opt_agg=optimized.aggregation_ratio,
            legacy_lat_us=legacy.latency.mean * 1e6,
            opt_lat_us=optimized.latency.mean * 1e6,
        )

    gains = result.column("gain")
    multi = [g for f, g in zip(result.column("flows"), gains) if f >= 4]
    assert min(multi) > 1.5, "paper claim: large gains once several flows are mixed"
    assert result.rows[-1]["opt_tx"] < result.rows[-1]["legacy_tx"] / 2
    result.figure = ("flows", ["legacy_MBps", "opt_MBps"], True)
    result.note("gain = optimizing/legacy throughput; >=2 flows is the paper's regime")
    result.note(
        "the 1-flow gain comes from cross-MESSAGE aggregation within the flow; "
        "legacy Madeleine only aggregates fragments of one flush"
    )
    return result


# ----------------------------------------------------------------------
# E3 — ping-pong latency/bandwidth sweep with protocol crossovers
# ----------------------------------------------------------------------
def e3_pingpong(quick: bool = False) -> ExperimentResult:
    """Classic single-flow ping-pong: the optimizer must not regress."""
    result = ExperimentResult(
        "E3",
        "ping-pong latency/bandwidth vs message size (MX)",
        [
            "size",
            "legacy_lat_us",
            "opt_lat_us",
            "opt_BW_MBps",
            "mode",
            "protocol",
        ],
    )
    sizes = [8, 512, 4 * KiB, 64 * KiB, 1 * MiB] if quick else [
        8, 64, 512, 4 * KiB, 16 * KiB, 32 * KiB, 64 * KiB, 256 * KiB, 1 * MiB,
    ]
    rounds = 10 if quick else 30

    def half_rtt(engine: str, size: int) -> float:
        cluster = Cluster(engine=engine, seed=3)
        app = PingPongApp(size=size, count=rounds, header_size=16, name="pp")
        run_session(cluster, [app.install])
        return sum(app.rtts) / len(app.rtts) / 2

    probe = Cluster(seed=0).engine("n0").drivers[0]
    for size in sizes:
        legacy_lat = half_rtt("legacy", size)
        opt_lat = half_rtt("optimizing", size)
        mode = probe.choose_mode(size).value
        protocol = "rdv" if probe.wants_rendezvous(size) else "eager"
        result.add_row(
            size=size,
            legacy_lat_us=legacy_lat * 1e6,
            opt_lat_us=opt_lat * 1e6,
            opt_BW_MBps=size / opt_lat / 1e6,
            mode=mode,
            protocol=protocol,
        )
        # No material regression vs legacy on single-flow ping-pong.
        assert opt_lat < legacy_lat * 1.10, f"regression at {size} B"

    protocols = result.column("protocol")
    assert "eager" in protocols and "rdv" in protocols, "rdv crossover must appear"
    result.figure = ("size", ["legacy_lat_us", "opt_lat_us"], True)
    result.note(
        f"PIO->DMA crossover at {probe.nic.link.pio_dma_crossover():.0f} B, "
        f"eager->rdv at {probe.caps.eager_threshold} B (driver capabilities)"
    )
    return result


# ----------------------------------------------------------------------
# E4 — future work: packet lookahead window size
# ----------------------------------------------------------------------
def e4_lookahead(quick: bool = False) -> ExperimentResult:
    """Sweep the lookahead window under a bursty multi-flow load."""
    result = ExperimentResult(
        "E4",
        "lookahead window sweep (bursty 8-flow load)",
        ["window", "MBps", "mean_lat_us", "p99_lat_us", "agg_ratio", "tx"],
    )
    windows = [1, 4, 16, 64] if quick else [1, 2, 4, 8, 16, 32, 64]
    count = 80 if quick else 250

    for window in windows:
        cluster = Cluster(
            seed=4, config=EngineConfig(lookahead_window=window)
        )
        apps = uniform_small_flows(8, size=512, count=count, interval=2 * us)
        report = run_session(cluster, [a.install for a in apps])
        result.add_row(
            window=window,
            MBps=report.throughput / 1e6,
            mean_lat_us=report.latency.mean * 1e6,
            p99_lat_us=report.latency.p99 * 1e6,
            agg_ratio=report.aggregation_ratio,
            tx=report.network_transactions,
        )

    # Shape: a wider window aggregates more and spends fewer transactions.
    assert result.rows[-1]["agg_ratio"] > result.rows[0]["agg_ratio"]
    assert result.rows[-1]["tx"] < result.rows[0]["tx"]
    result.figure = ("window", ["MBps"], True)
    result.note("window=1 degenerates to send-in-arrival-order")
    return result


# ----------------------------------------------------------------------
# E5 — future work: bounding the rearrangement search
# ----------------------------------------------------------------------
def e5_search_budget(quick: bool = False) -> ExperimentResult:
    """Sweep the bounded-search budget; gain plateaus early."""
    result = ExperimentResult(
        "E5",
        "bounded rearrangement-search budget sweep",
        ["budget", "MBps", "mean_lat_us", "agg_ratio", "wall_ms"],
    )
    budgets = [1, 8, 64] if quick else [1, 2, 4, 8, 16, 32, 64, 128, 256]
    count = 50 if quick else 120

    for budget in budgets:
        cluster = Cluster(
            n_nodes=3,
            seed=5,
            strategy=lambda b=budget: BoundedSearchStrategy(budget=b),
        )
        api = cluster.api("n0")
        apps = []
        for i in range(6):
            apps.append(
                StreamApp(
                    "n0",
                    "n1" if i % 2 == 0 else "n2",
                    size=256 * (1 + i),
                    count=count,
                    interval=2 * us,
                    size_sigma=0.8,
                    name=f"s{i}",
                )
            )
        start = time.perf_counter()
        report = run_session(cluster, [a.install for a in apps])
        wall = (time.perf_counter() - start) * 1e3
        result.add_row(
            budget=budget,
            MBps=report.throughput / 1e6,
            mean_lat_us=report.latency.mean * 1e6,
            agg_ratio=report.aggregation_ratio,
            wall_ms=wall,
        )

    assert result.rows[-1]["MBps"] >= result.rows[0]["MBps"] * 0.9
    result.figure = ("budget", ["MBps", "wall_ms"], True)
    result.note(
        "communication metrics saturate after a handful of evaluations while "
        "optimizer wall time keeps growing - bounding the search is free "
        "(the paper's announced plan)"
    )
    return result


# ----------------------------------------------------------------------
# E6 — multirail load balancing, homogeneous and heterogeneous
# ----------------------------------------------------------------------
def e6_multirail(quick: bool = False) -> ExperimentResult:
    """Aggregate bandwidth vs rail configuration and binding policy."""
    result = ExperimentResult(
        "E6",
        "multi-NIC load balancing (pooled vs static binding)",
        ["config", "rails", "MBps", "speedup", "rail_balance"],
    )
    n_bulk = 6 if quick else 16
    bulk_size = 256 * KiB

    configs = [
        ("1 x mx", [("mx", 1)], "pooled"),
        ("2 x mx pooled", [("mx", 2)], "pooled"),
        ("2 x mx static", [("mx", 2)], "static"),
        ("4 x mx pooled", [("mx", 4)], "pooled"),
        ("mx+elan pooled", [("mx", 1), ("elan", 1)], "pooled"),
        ("mx+elan static", [("mx", 1), ("elan", 1)], "static"),
    ]
    baseline_tput = None
    for label, networks, binding in configs:
        cluster = Cluster(
            networks=networks,
            seed=6,
            config=EngineConfig(stripe_chunk=32 * KiB, rail_binding=binding),
        )
        apps = [
            StreamApp(
                size=bulk_size,
                count=n_bulk,
                interval=1 * us,
                header_size=0,
                traffic_class=TrafficClass.BULK,
                name=f"bulk{i}",
            )
            for i in range(4)
        ]
        report = run_session(cluster, [a.install for a in apps])
        nics = cluster.fabric.node("n0").nics
        bytes_per_rail = [nic.stats.payload_bytes for nic in nics]
        balance = (
            min(bytes_per_rail) / max(bytes_per_rail) if max(bytes_per_rail) else 0.0
        )
        if baseline_tput is None:
            baseline_tput = report.throughput
        result.add_row(
            config=label,
            rails=len(nics),
            MBps=report.throughput / 1e6,
            speedup=report.throughput / baseline_tput,
            rail_balance=balance,
        )

    rows = {row["config"]: row for row in result.rows}
    assert rows["2 x mx pooled"]["speedup"] > 1.5, "near-linear 2-rail scaling"
    assert rows["4 x mx pooled"]["speedup"] > rows["2 x mx pooled"]["speedup"]
    assert (
        rows["mx+elan pooled"]["MBps"] >= rows["mx+elan static"]["MBps"]
    ), "pooled balancing beats static binding on heterogeneous rails"
    result.note("rail_balance = min/max payload bytes across rails (1.0 = perfect)")
    result.note(
        "static binding pins each channel to one NIC; a single busy traffic "
        "class then leaves the other rails idle - the pooling argument of paper S2"
    )
    return result


# ----------------------------------------------------------------------
# E7 — traffic classes vs one-to-one mapping
# ----------------------------------------------------------------------
def e7_traffic_classes(quick: bool = False) -> ExperimentResult:
    """Control-message latency under bulk interference, per channel policy."""
    result = ExperimentResult(
        "E7",
        "traffic-class channel assignment vs one-to-one fallback",
        ["policy", "ctl_p50_us", "ctl_p99_us", "bulk_MBps", "total_tx"],
    )
    n_ctl = 80 if quick else 250
    n_bulk = 20 if quick else 60

    def workload():
        return [
            StreamApp(
                size=24 * KiB,
                count=n_bulk,
                interval=2 * us,
                traffic_class=TrafficClass.BULK,
                name=f"bulk{i}",
            )
            for i in range(4)
        ] + [
            ControlPlaneApp(count=n_ctl, interval=4 * us, name="ctl"),
            DsmApp(faults=max(n_ctl // 10, 5), name="dsm"),
        ]

    from repro.core.channels import WeightedChannels

    policies = [
        ("classes (pooled)", lambda: PooledChannels(by_class=True)),
        ("weighted fair", WeightedChannels),
        ("single channel", lambda: PooledChannels(by_class=False)),
        ("one-to-one", OneToOneChannels),
    ]
    for label, policy in policies:
        cluster = Cluster(seed=7, policy=policy)
        report = run_session(cluster, [a.install for a in workload()])
        ctl = report.latency_by_class[TrafficClass.CONTROL]
        bulk = report.latency_by_class[TrafficClass.BULK]
        bulk_bytes = sum(
            r.size for r in cluster.metrics.records
            if r.traffic_class is TrafficClass.BULK
        )
        result.add_row(
            policy=label,
            ctl_p50_us=ctl.p50 * 1e6,
            ctl_p99_us=ctl.p99 * 1e6,
            bulk_MBps=bulk_bytes / report.duration / 1e6,
            total_tx=report.network_transactions,
        )

    # Floor: control traffic alone, no interference.
    floor_cluster = Cluster(seed=7)
    floor_report = run_session(
        floor_cluster,
        [ControlPlaneApp(count=n_ctl, interval=4 * us, name="ctl").install],
    )
    floor = floor_report.latency_by_class[TrafficClass.CONTROL]
    result.add_row(
        policy="(floor: ctl only)",
        ctl_p50_us=floor.p50 * 1e6,
        ctl_p99_us=floor.p99 * 1e6,
        bulk_MBps=0.0,
        total_tx=floor_report.network_transactions,
    )

    by_policy = {row["policy"]: row for row in result.rows}
    assert (
        by_policy["classes (pooled)"]["ctl_p99_us"]
        < by_policy["single channel"]["ctl_p99_us"]
    ), "class separation must shield control latency from bulk backlog"
    result.note("class-based pooling serves the CONTROL channel first (priority)")
    return result


# ----------------------------------------------------------------------
# E8 — Nagle-style artificial delay
# ----------------------------------------------------------------------
def e8_nagle(quick: bool = False) -> ExperimentResult:
    """Sweep the artificial delay under sparse arrivals."""
    result = ExperimentResult(
        "E8",
        "Nagle-style artificial delay sweep (sparse 4-flow load)",
        ["delay_us", "agg_ratio", "tx", "mean_lat_us", "MBps"],
    )
    delays_us = [0, 4, 16] if quick else [0, 1, 2, 4, 8, 16, 32]
    count = 80 if quick else 200

    for delay in delays_us:
        cluster = Cluster(
            seed=8,
            strategy=lambda: NagleStrategy(),
            config=EngineConfig(
                nagle_delay=delay * us, nagle_min_bytes=4 * KiB
            ),
        )
        apps = uniform_small_flows(4, size=128, count=count, interval=3 * us)
        report = run_session(cluster, [a.install for a in apps])
        result.add_row(
            delay_us=delay,
            agg_ratio=report.aggregation_ratio,
            tx=report.network_transactions,
            mean_lat_us=report.latency.mean * 1e6,
            MBps=report.throughput / 1e6,
        )

    assert result.rows[-1]["agg_ratio"] > result.rows[0]["agg_ratio"]
    assert result.rows[-1]["tx"] < result.rows[0]["tx"]
    assert result.rows[-1]["mean_lat_us"] > result.rows[0]["mean_lat_us"]
    result.figure = ("delay_us", ["mean_lat_us"], False)
    result.note("delay buys aggregation (fewer transactions) at a latency cost")
    return result


# ----------------------------------------------------------------------
# E9 — dynamic reassignment of resources to traffic classes (paper §2)
# ----------------------------------------------------------------------
def e9_adaptive(quick: bool = False) -> ExperimentResult:
    """Bulk traffic joins mid-run; the adaptive policy promotes it to a
    dedicated channel at run time and control latency recovers, while
    using only as many multiplexing units as the moment needs."""
    from repro.core.adaptive import AdaptiveChannels

    result = ExperimentResult(
        "E9",
        "dynamic class->channel reassignment (bulk joins mid-run)",
        ["policy", "ctl_p50_us", "ctl_p99_us", "channels_used", "adaptations"],
    )
    n_ctl = 150 if quick else 400
    n_bulk = 25 if quick else 60

    def workload():
        # Control runs from t=0; bulk joins after a quiet phase.
        return [
            ControlPlaneApp(count=n_ctl, interval=3 * us, name="ctl"),
            StreamApp(
                size=16 * KiB,
                count=n_bulk,
                interval=2 * us,
                traffic_class=TrafficClass.BULK,
                name="bulk",
            ),
        ]

    holder: dict[str, object] = {}

    def adaptive_factory():
        policy = AdaptiveChannels(promote_bytes=32 * KiB, window_dispatches=8)
        holder.setdefault("policy", policy)
        return policy

    policies = [
        ("adaptive", adaptive_factory),
        ("static by-class", lambda: PooledChannels(by_class=True)),
        ("static shared", lambda: PooledChannels(by_class=False)),
    ]
    for label, factory in policies:
        holder.clear()
        cluster = Cluster(seed=9, policy=factory)
        report = run_session(cluster, [a.install for a in workload()])
        ctl = report.latency_by_class[TrafficClass.CONTROL]
        if label == "adaptive":
            policy = holder["policy"]
            channels_used = policy.channels_in_use
            adaptations = len(policy.adaptations)
            assert ("promote", TrafficClass.BULK) in policy.adaptations, (
                "bulk must be promoted to its own channel at run time"
            )
        else:
            channels_used = len(cluster.fabric.node("n0").channels)
            adaptations = 0
        result.add_row(
            policy=label,
            ctl_p50_us=ctl.p50 * 1e6,
            ctl_p99_us=ctl.p99 * 1e6,
            channels_used=channels_used,
            adaptations=adaptations,
        )

    rows = {row["policy"]: row for row in result.rows}
    assert (
        rows["adaptive"]["ctl_p99_us"] < rows["static shared"]["ctl_p99_us"] / 2
    ), "run-time promotion must recover most of the class-separation benefit"
    assert rows["adaptive"]["channels_used"] < rows["static by-class"]["channels_used"]
    result.note(
        "adaptive starts on ONE shared channel and promotes classes as traffic "
        "appears - the paper's 'change the assignment as the needs evolve'"
    )
    return result


# ----------------------------------------------------------------------
# E10 — ablation: by-copy vs gather aggregation, and host CPU cost
# ----------------------------------------------------------------------
def e10_copy_vs_gather(quick: bool = False) -> ExperimentResult:
    """Capability ablation (DESIGN.md §5.3): the same aggregation
    strategy over drivers with/without hardware gather, and the host-CPU
    accounting of PIO vs DMA."""
    import dataclasses

    from repro.drivers.mx import MX_CAPABILITIES

    result = ExperimentResult(
        "E10",
        "aggregation mechanism ablation on MX (copy vs gather vs none)",
        ["capabilities", "MBps", "mean_lat_us", "agg_ratio", "host_ms", "nic_busy_ms"],
    )
    count = 80 if quick else 200
    variants = [
        ("gather+copy (stock MX)", MX_CAPABILITIES),
        (
            "copy only (no gather)",
            dataclasses.replace(MX_CAPABILITIES, supports_gather=False, max_gather_entries=1),
        ),
        (
            "no aggregation",
            None,  # stock caps, but the eager strategy sends one entry per packet
        ),
        (
            "dma only (no PIO)",
            dataclasses.replace(MX_CAPABILITIES, supports_pio=False),
        ),
    ]
    for label, caps in variants:
        strategy = "eager" if label == "no aggregation" else "aggregate"
        cluster = Cluster(
            seed=10,
            strategy=strategy,
            driver_caps={"mx": caps} if caps is not None else None,
        )
        apps = uniform_small_flows(8, size=2 * KiB, count=count, interval=1 * us)
        report = run_session(cluster, [a.install for a in apps])
        busy = sum(
            nic.stats.busy_time for nic in cluster.fabric.node("n0").nics
        )
        result.add_row(
            capabilities=label,
            MBps=report.throughput / 1e6,
            mean_lat_us=report.latency.mean * 1e6,
            agg_ratio=report.aggregation_ratio,
            host_ms=report.host_time * 1e3,
            nic_busy_ms=busy * 1e3,
        )

    rows = {row["capabilities"]: row for row in result.rows}
    assert rows["gather+copy (stock MX)"]["MBps"] >= rows["copy only (no gather)"]["MBps"]
    assert rows["copy only (no gather)"]["MBps"] > rows["no aggregation"]["MBps"]
    assert rows["copy only (no gather)"]["host_ms"] > rows["gather+copy (stock MX)"]["host_ms"]
    result.note(
        "strategies never hardcode the mechanism: the same aggregation code "
        "degrades from zero-copy gather to by-copy staging to nothing as "
        "driver capabilities shrink"
    )
    result.note(
        "the dma-only row matches stock: once aggregation is active, packets "
        "exceed the PIO window anyway, so removing PIO costs nothing here"
    )
    return result


# ----------------------------------------------------------------------
# E11 — offered-load saturation sweep
# ----------------------------------------------------------------------
def e11_offered_load(quick: bool = False) -> ExperimentResult:
    """Delivered throughput and latency vs offered load, both engines.

    The classic saturation curve: both engines track the offered load
    while unloaded; the legacy engine hits its per-packet ceiling first,
    the optimizer keeps tracking until the aggregated-packet ceiling.
    """
    result = ExperimentResult(
        "E11",
        "offered-load sweep (8 flows of 512 B messages)",
        [
            "offered_MBps",
            "legacy_MBps",
            "opt_MBps",
            "legacy_lat_us",
            "opt_lat_us",
        ],
    )
    n_flows = 8
    size = 512
    intervals_us = [64, 16, 4, 2] if quick else [64, 32, 16, 8, 4, 2, 1]
    count = 60 if quick else 150

    def run(engine: str, interval: float):
        cluster = Cluster(engine=engine, seed=11)
        apps = uniform_small_flows(
            n_flows, size=size, count=count, interval=interval
        )
        return run_session(cluster, [a.install for a in apps])

    for interval_us in intervals_us:
        interval = interval_us * us
        offered = n_flows * size / interval
        legacy = run("legacy", interval)
        optimized = run("optimizing", interval)
        result.add_row(
            offered_MBps=offered / 1e6,
            legacy_MBps=legacy.throughput / 1e6,
            opt_MBps=optimized.throughput / 1e6,
            legacy_lat_us=legacy.latency.mean * 1e6,
            opt_lat_us=optimized.latency.mean * 1e6,
        )

    # Shapes: unloaded parity; the optimizer's ceiling is >2x legacy's.
    first = result.rows[0]
    assert first["legacy_MBps"] > 0.8 * first["offered_MBps"], "unloaded: both track"
    last = result.rows[-1]
    assert last["opt_MBps"] > 1.5 * last["legacy_MBps"], "saturation ceilings differ"
    assert last["legacy_lat_us"] > 5 * first["legacy_lat_us"], "legacy past its knee"
    result.figure = ("offered_MBps", ["legacy_MBps", "opt_MBps"], True)
    result.note(
        "legacy saturates at the per-packet ceiling; cross-flow aggregation "
        "moves the ceiling, which is the paper's practical payoff"
    )
    return result


#: experiment id → function, for the module CLI and the bench targets.
ALL_EXPERIMENTS = {
    "E1": e1_architecture,
    "E2": e2_aggregation,
    "E3": e3_pingpong,
    "E4": e4_lookahead,
    "E5": e5_search_budget,
    "E6": e6_multirail,
    "E7": e7_traffic_classes,
    "E8": e8_nagle,
    "E9": e9_adaptive,
    "E10": e10_copy_vs_gather,
    "E11": e11_offered_load,
}
