"""Kernel micro-benchmarks of the optimizer hot path.

Not a paper table: these measure the *substrate* — how fast one
scheduling decision runs, how many candidate plans the bounded search
scores per second, and how fast the waiting-list primitives are — as a
function of backlog depth.  The suite emits ``BENCH_kernel.json`` so CI
can gate on regressions against a checked-in baseline
(``benchmarks/baselines/kernel_baseline.json``).

Methodology
-----------
Every metric is a throughput (higher is better), measured as the best
of ``repeats`` timed runs (min-of-N suppresses scheduler noise).  The
decision benchmarks defeat any cross-decision caching by invalidating
the queue's version stamp between iterations (when the queue exposes
one): in a real run every decision is followed by a dispatch that
mutates the queue, so cross-decision cache hits would be unrealistic.

Usage::

    python -m repro.bench.kernel                     # print + BENCH_kernel.json
    python -m repro.bench.kernel --check             # fail on >25% regression
    python -m repro.bench.kernel --update-baseline   # refresh the baseline
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Callable

from repro.core.config import EngineConfig
from repro.core.strategies.search import BoundedSearchStrategy
from repro.core.waiting import ChannelQueue
from repro.madeleine.message import Flow, Message
from repro.madeleine.submit import EntryKind, SubmitEntry
from repro.runtime.cluster import Cluster

__all__ = [
    "DEPTHS",
    "build_loaded_cluster",
    "decision_rate",
    "drain_rate",
    "queue_op_rates",
    "run_suite",
    "scored_candidates_rate",
    "tracing_overhead",
    "check_regressions",
]

#: Backlog depths the suite sweeps (entries pending per decision).
DEPTHS = (16, 64, 256, 1024)

#: Regression threshold the CI gate enforces (fraction of baseline).
MAX_REGRESSION = 0.25

#: Allowed decision-rate overhead of the disabled observability plane
#: (NullTracer, no sinks) over the bare-guard floor.
TRACE_NULL_OVERHEAD = 0.02

#: Allowed decision-rate overhead of full tracing (ring sink subscribed,
#: explain collection + decide records live) over the disabled plane.
TRACE_FULL_OVERHEAD = 0.15

#: Default location of the emitted results (repository root).
RESULT_FILE = "BENCH_kernel.json"

#: Default location of the checked-in baseline.
BASELINE_FILE = "benchmarks/baselines/kernel_baseline.json"

_ENTRY_SIZE = 256  # small enough that no driver wants a rendezvous


def _data_entry(flow: Flow, size: int = _ENTRY_SIZE) -> SubmitEntry:
    message = Message(flow)
    fragment = message.add_fragment(size)
    message.mark_flushed(0.0)
    return SubmitEntry(EntryKind.DATA, flow.dst, 0.0, fragment=fragment, flow=flow)


def build_loaded_cluster(
    depth: int,
    *,
    n_flows: int = 8,
    strategy=None,
    config: EngineConfig | None = None,
) -> Cluster:
    """A 2-node cluster whose ``n0`` engine holds ``depth`` pending entries.

    Entries are enqueued directly (no pump is triggered), interleaved
    round-robin over ``n_flows`` independent flows so cross-flow
    aggregation opportunities exist at every seed.
    """
    cluster = Cluster(seed=0, strategy=strategy, config=config)
    engine = cluster.engine("n0")
    flows = [
        Flow(f"bench-f{i}", "n0", "n1") for i in range(n_flows)
    ]
    for i in range(depth):
        engine._enqueue(_data_entry(flows[i % n_flows]))
    return cluster


def _bump_version(queue) -> None:
    """Invalidate any cross-decision caches the queue may keep."""
    invalidate = getattr(queue, "invalidate_caches", None)
    if invalidate is not None:
        invalidate()


def _best_rate(work: Callable[[], int], repeats: int) -> float:
    """Operations per second: best (max) of ``repeats`` timed runs."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        n_ops = work()
        elapsed = time.perf_counter() - start
        if elapsed > 0:
            best = max(best, n_ops / elapsed)
    return best


def decision_rate(
    depth: int, strategy_name: str, *, iterations: int = 200, repeats: int = 5
) -> float:
    """Scheduling decisions per second at a fixed backlog depth.

    ``strategy_name`` is ``"aggregate"`` (the greedy default) or
    ``"search"`` (bounded search, budget 64 over a 32-entry window —
    representative optimizer settings).
    """
    if strategy_name == "search":
        strategy = lambda: BoundedSearchStrategy(budget=64)  # noqa: E731
        config = EngineConfig(lookahead_window=32)
    else:
        strategy = strategy_name
        config = None
    cluster = build_loaded_cluster(depth, strategy=strategy, config=config)
    engine = cluster.engine("n0")
    driver = engine.drivers[0]
    queues = list(engine.waiting.non_empty())

    def work() -> int:
        for _ in range(iterations):
            plan = engine.strategy.make_plan(engine, driver)
            assert plan is not None
            for queue in queues:
                _bump_version(queue)
        return iterations

    return _best_rate(work, repeats)


def scored_candidates_rate(
    depth: int, *, budget: int = 256, iterations: int = 50, repeats: int = 5
) -> float:
    """Candidate plans evaluated per second by the bounded search."""
    strategy_holder: list[BoundedSearchStrategy] = []

    def factory() -> BoundedSearchStrategy:
        strategy = BoundedSearchStrategy(budget=budget)
        strategy_holder.append(strategy)
        return strategy

    cluster = build_loaded_cluster(
        depth, strategy=factory, config=EngineConfig(lookahead_window=32)
    )
    engine = cluster.engine("n0")
    driver = engine.drivers[0]
    strategy = strategy_holder[0]
    queues = list(engine.waiting.non_empty())

    counted = hasattr(strategy, "candidates_evaluated")
    if not counted:
        # Pre-refactor strategies keep no counter: count fresh score
        # calls through a transparent cost-model proxy instead.
        inner_cost = engine.cost

        class _CountingCost:
            calls = 0

            def score(self, plan, now):
                _CountingCost.calls += 1
                return inner_cost.score(plan, now)

            def __getattr__(self, name):
                return getattr(inner_cost, name)

        engine.cost = _CountingCost()

    def work() -> int:
        before = (
            strategy.candidates_evaluated if counted else engine.cost.calls
        )
        for _ in range(iterations):
            engine.strategy.make_plan(engine, driver)
            for queue in queues:
                _bump_version(queue)
        after = strategy.candidates_evaluated if counted else engine.cost.calls
        return after - before

    return _best_rate(work, repeats)


def queue_op_rates(
    depth: int, *, iterations: int = 2000, repeats: int = 5
) -> dict[str, float]:
    """Raw waiting-list primitive throughput at a fixed depth.

    ``remove`` removes (and re-appends) entries from the *middle* of the
    queue — the rendezvous-parking pattern that made ``deque.remove``
    O(n).
    """
    flow = Flow("bench-q", "n0", "n1")
    queue = ChannelQueue(0)
    entries = [_data_entry(flow) for _ in range(depth)]
    for entry in entries:
        queue.append(entry)

    rates: dict[str, float] = {}

    def query_work() -> int:
        for _ in range(iterations):
            len(queue)
            queue.pending_bytes
            queue.oldest_submit_time
            _bump_version(queue)
        return iterations * 3

    rates["query"] = _best_rate(query_work, repeats)

    def window_work() -> int:
        for _ in range(iterations):
            queue.pending(16)
            _bump_version(queue)
        return iterations

    rates["pending_window"] = _best_rate(window_work, repeats)

    middle = entries[depth // 2]

    def churn_work() -> int:
        for _ in range(iterations):
            queue.remove(middle)
            queue.append(middle)
        return iterations * 2

    rates["remove_append"] = _best_rate(churn_work, repeats)
    return rates


def drain_rate(depth: int, *, repeats: int = 5) -> float:
    """Entries fully dispatched per wall-second draining a deep backlog.

    Unlike :func:`decision_rate` this includes the whole engine cycle —
    plan, validate, consume, queue removal, wire delivery — so it is
    where O(n) queue removal shows up as O(n²) drain time.
    """

    def work() -> int:
        cluster = build_loaded_cluster(depth)
        engine = cluster.engine("n0")
        engine._kick("bench")
        cluster.run_until_idle()
        assert engine.waiting.total_pending == 0
        return depth

    return _best_rate(work, repeats)


class _InertTracer:
    """The cheapest possible tracer: one attribute, always off.

    The floor the NullTracer fast path is gated against — if ``enabled``
    ever grows back into a property (or the guard sites start doing work
    before checking it), the ``off`` rate falls measurably below this.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = False


def tracing_overhead(
    depth: int = 256, *, iterations: int = 100, repeats: int = 7
) -> dict[str, float]:
    """Decision-rate cost of the observability plane at one backlog depth.

    Three configurations, measured interleaved (one timed round of each
    per repeat, best-of-N per configuration) so scheduler drift hits all
    three alike:

    * ``inert`` — the engine's tracer swapped for :class:`_InertTracer`:
      the bare cost of the guard branches;
    * ``off``   — the production default: NullTracer, no sinks,
      ``enabled`` False;
    * ``full``  — a :class:`~repro.obs.recorder.RingBufferSink` plus a
      :class:`~repro.obs.causal.TailExemplars` reservoir subscribed
      (the sinks a traced plane installs): explain collection, score
      breakdowns, one ``optimizer.decide`` record per decision retained
      in the ring, and the span-collector dispatch per event.

    Every loop replicates the pump's emission guard, so ``full`` pays
    for the decide record exactly as a traced run does.  Returns the
    three rates plus ``overhead_off`` (off vs inert) and
    ``overhead_full`` (full vs off) as fractions.
    """
    from repro.obs.causal import TailExemplars
    from repro.obs.recorder import RingBufferSink

    def setup(traced: bool):
        cluster = build_loaded_cluster(
            depth,
            strategy=lambda: BoundedSearchStrategy(budget=64),
            config=EngineConfig(lookahead_window=32),
        )
        engine = cluster.engine("n0")
        if traced:
            cluster.sim.tracer.subscribe(RingBufferSink(4096))
            cluster.sim.tracer.subscribe(TailExemplars(4))
        return engine

    engines = {
        "inert": setup(traced=False),
        "off": setup(traced=False),
        "full": setup(traced=True),
    }
    engines["inert"].sim.tracer = _InertTracer()  # type: ignore[assignment]

    def one_round(engine) -> float:
        driver = engine.drivers[0]
        queues = list(engine.waiting.non_empty())
        tracer = engine.sim.tracer
        start = time.perf_counter()
        for _ in range(iterations):
            plan = engine.strategy.make_plan(engine, driver)
            assert plan is not None
            if tracer.enabled:
                engine._emit_decide(plan, tracer)
            for queue in queues:
                _bump_version(queue)
        elapsed = time.perf_counter() - start
        return iterations / elapsed if elapsed > 0 else 0.0

    best = {name: 0.0 for name in engines}
    for _ in range(repeats):
        for name, engine in engines.items():
            best[name] = max(best[name], one_round(engine))

    return {
        f"inert/d{depth}": best["inert"],
        f"off/d{depth}": best["off"],
        f"full/d{depth}": best["full"],
        "overhead_off": 1.0 - best["off"] / best["inert"] if best["inert"] else 0.0,
        "overhead_full": 1.0 - best["full"] / best["off"] if best["off"] else 0.0,
    }


def run_suite(
    depths: tuple[int, ...] = DEPTHS, *, quick: bool = False
) -> dict[str, float]:
    """Run every micro-benchmark; returns a flat metric → rate mapping."""
    if quick:
        depths = tuple(d for d in depths if d <= 256)
    scale = 0.25 if quick else 1.0
    metrics: dict[str, float] = {}
    for depth in depths:
        iters = max(int(200 * scale), 20)
        metrics[f"decisions_per_sec/aggregate/d{depth}"] = decision_rate(
            depth, "aggregate", iterations=iters
        )
        metrics[f"decisions_per_sec/search/d{depth}"] = decision_rate(
            depth, "search", iterations=max(int(50 * scale), 10)
        )
        metrics[f"scored_candidates_per_sec/d{depth}"] = scored_candidates_rate(
            depth, iterations=max(int(50 * scale), 10)
        )
        for op, rate in queue_op_rates(
            depth, iterations=max(int(2000 * scale), 200)
        ).items():
            metrics[f"queue_ops_per_sec/{op}/d{depth}"] = rate
        metrics[f"drain_entries_per_sec/d{depth}"] = drain_rate(depth)
    return metrics


def check_regressions(
    metrics: dict[str, float],
    baseline: dict[str, float],
    *,
    max_regression: float = MAX_REGRESSION,
) -> list[str]:
    """Metrics slower than ``baseline * (1 - max_regression)``.

    Baseline metrics missing from ``metrics`` fail too (a silently
    dropped benchmark must not pass the gate); new metrics with no
    baseline are ignored.
    """
    failures = []
    for name, reference in sorted(baseline.items()):
        current = metrics.get(name)
        if current is None:
            failures.append(f"{name}: missing from current results")
        elif current < reference * (1.0 - max_regression):
            failures.append(
                f"{name}: {current:.0f}/s is {current / reference:.2f}x the "
                f"baseline {reference:.0f}/s (floor {1.0 - max_regression:.2f}x)"
            )
    return failures


def _render(metrics: dict[str, float]) -> str:
    width = max(len(k) for k in metrics)
    return "\n".join(
        f"  {name.ljust(width)}  {rate:>14,.0f}/s" for name, rate in sorted(metrics.items())
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the suite, write JSON, optionally gate."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.kernel", description=__doc__
    )
    parser.add_argument(
        "--out", default=RESULT_FILE, help="result JSON path (default: %(default)s)"
    )
    parser.add_argument(
        "--baseline",
        default=BASELINE_FILE,
        help="checked-in baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        # argparse %-expands help strings, so spell the percent sign %%.
        help=f"exit 1 on >{MAX_REGRESSION * 100:.0f}%% regression vs the baseline",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=MAX_REGRESSION,
        help="allowed fractional slowdown for --check (default: %(default)s)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file with this run's results",
    )
    parser.add_argument("--quick", action="store_true", help="reduced depths/iterations")
    parser.add_argument(
        "--trace-gate",
        action="store_true",
        help=(
            f"measure observability overhead and exit 1 when the disabled "
            f"plane costs >{TRACE_NULL_OVERHEAD * 100:.0f}%% or full tracing "
            f"costs >{TRACE_FULL_OVERHEAD * 100:.0f}%% decision rate"
        ),
    )
    args = parser.parse_args(argv)

    if args.trace_gate:
        rates = tracing_overhead(iterations=40 if args.quick else 100)
        print("== observability overhead (search decisions/s, d256, best-of-N) ==")
        for name, value in rates.items():
            if name.startswith("overhead"):
                print(f"  {name:<16} {value:8.2%}")
            else:
                print(f"  {name:<16} {value:12,.0f}/s")
        failures = []
        if rates["overhead_off"] > TRACE_NULL_OVERHEAD:
            failures.append(
                f"disabled plane costs {rates['overhead_off']:.2%} decision rate "
                f"(gate {TRACE_NULL_OVERHEAD:.0%})"
            )
        if rates["overhead_full"] > TRACE_FULL_OVERHEAD:
            failures.append(
                f"full tracing costs {rates['overhead_full']:.2%} decision rate "
                f"(gate {TRACE_FULL_OVERHEAD:.0%})"
            )
        if failures:
            print("\ntracing overhead gate failed:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"within gates (off <= {TRACE_NULL_OVERHEAD:.0%}, "
            f"full <= {TRACE_FULL_OVERHEAD:.0%})"
        )
        return 0

    metrics = run_suite(quick=args.quick)
    print("== kernel micro-benchmarks (ops per wall-second, best of 3) ==")
    print(_render(metrics))

    from repro.core import kernel as _kernel

    payload = {
        "schema": 1,
        "suite": "kernel",
        "quick": args.quick,
        "kernel_backend": _kernel.ACTIVE_BACKEND,
        "metrics": metrics,
    }
    Path(args.out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"\nresults written to {args.out}")

    if args.update_baseline:
        baseline_path = Path(args.baseline)
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        baseline_path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"baseline updated at {args.baseline}")

    if args.check:
        baseline_path = Path(args.baseline)
        if not baseline_path.exists():
            print(f"no baseline at {args.baseline}; nothing to check", file=sys.stderr)
            return 1
        baseline = json.loads(baseline_path.read_text())["metrics"]
        failures = check_regressions(
            metrics, baseline, max_regression=args.max_regression
        )
        if failures:
            print("\nperformance regressions detected:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.baseline} (floor {1 - args.max_regression:.2f}x)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
