"""ASCII figure rendering for experiment series.

The paper era would have plotted these with gnuplot; offline and
terminal-first, we render each experiment's series as an ASCII chart so
``python -m repro.bench --chart`` regenerates *figures*, not just
tables.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.util.errors import ConfigurationError

__all__ = ["render_series", "render_result_figure"]

_MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    return min(int((value - lo) / (hi - lo) * (cells - 1)), cells - 1)


def render_series(
    x: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    width: int = 60,
    height: int = 14,
    x_label: str = "x",
    log_x: bool = False,
) -> str:
    """Render one or more y-series over a shared x axis.

    Each series gets a marker (legend below the chart); y is always
    linear, x may be logarithmic for sweeps over powers of two.
    """
    if width < 20 or height < 5:
        raise ConfigurationError("chart must be at least 20x5")
    if not x:
        raise ConfigurationError("empty x axis")
    for name, ys in series.items():
        if len(ys) != len(x):
            raise ConfigurationError(
                f"series {name!r} has {len(ys)} points for {len(x)} x values"
            )
    if len(series) > len(_MARKERS):
        raise ConfigurationError(f"at most {len(_MARKERS)} series supported")

    if log_x and any(v <= 0 for v in x):
        raise ConfigurationError("log_x requires positive x values")
    xs = [math.log(v) if log_x else float(v) for v in x]
    x_lo, x_hi = min(xs), max(xs)
    all_y = [float(v) for ys in series.values() for v in ys]
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, ys) in zip(_MARKERS, series.items()):
        for xv, yv in zip(xs, ys):
            col = _scale(xv, x_lo, x_hi, width)
            row = height - 1 - _scale(float(yv), y_lo, y_hi, height)
            grid[row][col] = marker

    left_labels = [f"{y_hi:.3g}", f"{(y_lo + y_hi) / 2:.3g}", f"{y_lo:.3g}"]
    label_width = max(len(s) for s in left_labels)
    lines = []
    for i, row in enumerate(grid):
        if i == 0:
            label = left_labels[0]
        elif i == height // 2:
            label = left_labels[1]
        elif i == height - 1:
            label = left_labels[2]
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |{''.join(row)}")
    lines.append(f"{'':>{label_width}} +{'-' * width}")
    x_axis = f"{min(x):g}"
    x_end = f"{max(x):g}"
    pad = width - len(x_axis) - len(x_end)
    lines.append(f"{'':>{label_width}}  {x_axis}{' ' * max(pad, 1)}{x_end}")
    scale_tag = " (log x)" if log_x else ""
    legend = ", ".join(
        f"{marker}={name}" for marker, name in zip(_MARKERS, series)
    )
    lines.append(f"{'':>{label_width}}  {x_label}{scale_tag}   [{legend}]")
    return "\n".join(lines)


def render_result_figure(result, *, width: int = 60, height: int = 14) -> str | None:
    """Render an :class:`ExperimentResult`'s declared figure, if any.

    Experiments declare ``result.figure = (x_column, [y_columns],
    log_x)``; results without one return ``None``.
    """
    figure = getattr(result, "figure", None)
    if figure is None:
        return None
    x_column, y_columns, log_x = figure
    x = result.column(x_column)
    series = {name: result.column(name) for name in y_columns}
    chart = render_series(
        x, series, width=width, height=height, x_label=x_column, log_x=log_x
    )
    return f"-- figure: {result.experiment_id} --\n{chart}"
