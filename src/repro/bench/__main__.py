"""Command-line entry point: run every experiment and print its table.

Usage::

    python -m repro.bench            # full axes
    python -m repro.bench --quick    # reduced axes (CI-sized)
    python -m repro.bench E2 E7      # a subset
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench", description=__doc__
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help=f"experiment ids to run (default: all of {', '.join(ALL_EXPERIMENTS)})",
    )
    parser.add_argument("--quick", action="store_true", help="reduced axes")
    parser.add_argument(
        "--chart",
        action="store_true",
        help="also render each experiment's declared figure as an ASCII chart",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        help="additionally write all results as one markdown document",
    )
    args = parser.parse_args(argv)

    selected = args.experiments or list(ALL_EXPERIMENTS)
    unknown = [e for e in selected if e not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment ids: {unknown}")

    results = []
    for experiment_id in selected:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[experiment_id](quick=args.quick)
        elapsed = time.perf_counter() - start
        results.append(result)
        print(result.render())
        if args.chart:
            from repro.bench.figures import render_result_figure

            chart = render_result_figure(result)
            if chart is not None:
                print(chart)
        print(f"  ({elapsed:.2f} s wall)\n")
    if args.markdown:
        from pathlib import Path

        from repro.bench.harness import format_table

        sections = ["# Experiment results\n"]
        for result in results:
            sections.append(f"## {result.experiment_id} — {result.title}\n")
            sections.append("```")
            sections.append(format_table(result.columns, result.rows))
            sections.append("```\n")
            for note in result.notes:
                sections.append(f"* {note}")
            sections.append("")
        Path(args.markdown).write_text("\n".join(sections), encoding="utf-8")
        print(f"markdown written to {args.markdown}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
