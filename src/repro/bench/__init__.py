"""Benchmark harness: experiment definitions E1–E8 and table printing.

Every experiment in DESIGN.md §4 has one function here that builds the
workload, runs it on the relevant engine configurations, and returns an
:class:`~repro.bench.harness.ExperimentResult` whose rows are the
table/series the paper-shaped output is printed from.  The
``benchmarks/`` directory wraps each one in a pytest-benchmark target;
``python -m repro.bench`` runs them all from the command line.
"""

from repro.bench.harness import ExperimentResult, format_table, persist_result
from repro.bench.experiments import (
    e1_architecture,
    e2_aggregation,
    e3_pingpong,
    e4_lookahead,
    e5_search_budget,
    e6_multirail,
    e7_traffic_classes,
    e8_nagle,
    ALL_EXPERIMENTS,
)

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "e1_architecture",
    "e2_aggregation",
    "e3_pingpong",
    "e4_lookahead",
    "e5_search_budget",
    "e6_multirail",
    "e7_traffic_classes",
    "e8_nagle",
    "format_table",
    "persist_result",
]
