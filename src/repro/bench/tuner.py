"""Benchmarks of the online adaptation plane (:mod:`repro.tuner`).

Three questions, answered with numbers in ``BENCH_tuner.json``:

* **Is the specialized fast path actually faster?**  Decisions per
  second of a specialized closure (constants folded, capabilities
  pre-resolved) vs the general ``make_plan`` it was synthesized from,
  on the same loaded engine — plus the full wrapper rate (tracker +
  dispatch bookkeeping included), which is the price a tuned run pays.
* **Does the tuner actually serve from it?**  Fraction of decisions
  served from the specialized path on a stable-regime workload (the
  acceptance floor is one half).
* **Does tail-acting rail selection help the tail?**  p99 message
  latency on a skewed-rail cluster (slow TCP rail listed first, fast
  MX rail second) with selection on vs off, measured after a warmup
  long enough for the selector to have rail statistics.

Unlike :mod:`repro.bench.kernel` there is no checked-in baseline: the
``--check`` gate enforces *absolute* invariants (specialized beats
general, served fraction >= 0.5, selection-on p99 < selection-off p99),
so a regression is a property violation, not a percentage.

Usage::

    python -m repro.bench.tuner             # print + BENCH_tuner.json
    python -m repro.bench.tuner --check     # fail on any invariant violation
    python -m repro.bench.tuner --quick     # reduced iterations (CI)
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.kernel import _best_rate, _bump_version, build_loaded_cluster
from repro.core.config import EngineConfig
from repro.core.strategies.search import BoundedSearchStrategy
from repro.runtime.cluster import Cluster
from repro.tuner import Tuner, TunerConfig
from repro.tuner.config import RailsConfig
from repro.tuner.specialize import MISS

__all__ = [
    "decision_rates",
    "stable_fraction",
    "skewed_rail_p99",
    "run_suite",
    "check_invariants",
]

#: Acceptance floor on the share of decisions served specialized.
MIN_SPECIALIZED_FRACTION = 0.5

#: Default location of the emitted results (repository root).
RESULT_FILE = "BENCH_tuner.json"

_DEPTH = 16  # backlog depth for the decision-rate comparison


def decision_rates(
    depth: int = _DEPTH, *, iterations: int = 300, repeats: int = 9
) -> dict[str, float]:
    """Decisions per second: general vs specialized vs tuned wrapper.

    All three run the bounded search over the same backlog.  ``general``
    calls the strategy's own ``make_plan``; ``specialized`` calls the
    synthesized per-driver closure directly (the code the fast path
    executes once installed); ``wrapper`` goes through the installed
    :class:`~repro.tuner.specialize.TunedStrategy`, paying the regime
    tracker and hit accounting on every call.

    Measured *interleaved* — one timed round of each configuration per
    repeat, best-of-N per configuration — so scheduler drift hits all
    three alike (the same discipline as
    :func:`repro.bench.kernel.tracing_overhead`); a sequential
    measurement would let a frequency ramp masquerade as a speedup.
    """

    def setup() -> Cluster:
        return build_loaded_cluster(
            depth,
            strategy=lambda: BoundedSearchStrategy(budget=16),
            config=EngineConfig(lookahead_window=16),
        )

    # --- general: the plain strategy, no tuner anywhere -------------
    general_cluster = setup()
    general_engine = general_cluster.engine("n0")
    general_driver = general_engine.drivers[0]
    general_queues = list(general_engine.waiting.non_empty())

    # --- specialized + wrapper: tuner installed, closure active -----
    tuned_cluster = setup()
    tuned_engine = tuned_cluster.engine("n0")
    tuned_driver = tuned_engine.drivers[0]
    tuned_queues = list(tuned_engine.waiting.non_empty())
    tuner = Tuner(tuned_engine, TunerConfig(min_dwell=2, drift_window=3))
    tuner.install()
    # Warm until the tracker stabilizes and a specialization installs.
    for _ in range(8):
        tuned_engine.strategy.make_plan(tuned_engine, tuned_driver)
        for queue in tuned_queues:
            _bump_version(queue)
    active = tuner.active
    assert active is not None, "tuner failed to install a specialization"
    fn = active.fns[id(tuned_driver)]

    def general_round() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            plan = general_engine.strategy.make_plan(general_engine, general_driver)
            assert plan is not None
            for queue in general_queues:
                _bump_version(queue)
        elapsed = time.perf_counter() - start
        return iterations / elapsed if elapsed > 0 else 0.0

    def specialized_round() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            plan = fn(tuned_engine)
            assert plan is not None and plan is not MISS
            for queue in tuned_queues:
                _bump_version(queue)
        elapsed = time.perf_counter() - start
        return iterations / elapsed if elapsed > 0 else 0.0

    def wrapper_round() -> float:
        start = time.perf_counter()
        for _ in range(iterations):
            plan = tuned_engine.strategy.make_plan(tuned_engine, tuned_driver)
            assert plan is not None
            for queue in tuned_queues:
                _bump_version(queue)
        elapsed = time.perf_counter() - start
        return iterations / elapsed if elapsed > 0 else 0.0

    rounds = {
        "general": general_round,
        "specialized": specialized_round,
        "wrapper": wrapper_round,
    }
    best = {name: 0.0 for name in rounds}
    for _ in range(repeats):
        for name, one_round in rounds.items():
            best[name] = max(best[name], one_round())
    return {
        f"decisions_per_sec/{name}/d{depth}": rate for name, rate in best.items()
    }


def stable_fraction(*, count: int = 400) -> dict[str, float]:
    """Tuner counters over a stable deep-regime streaming run.

    One bursty sender keeps the backlog above ``deep_backlog`` for the
    whole run, so after ``min_dwell`` decisions every further decision
    should come from the installed specialization.
    """
    cluster = Cluster(
        n_nodes=2,
        networks=[("mx", 1)],
        engine="optimizing",
        strategy="search",
        seed=7,
        tuner={"min_dwell": 4, "drift_window": 3},
    )
    api = cluster.api("n0")
    flow = api.open_flow("n1")

    def burst() -> None:
        for _ in range(count):
            api.send(flow, 512)

    cluster.sim.at(0.0, burst)
    cluster.run_until_idle()
    assert cluster.tuner is not None
    totals = cluster.tuner.summary()["totals"]
    decisions = totals["decisions"] or 1
    return {
        "stable/decisions": float(totals["decisions"]),
        "stable/specialized": float(totals["specialized"]),
        "stable/specialized_fraction": totals["specialized"] / decisions,
        "stable/installs": float(totals["installs"]),
    }


def skewed_rail_p99(
    *, count: int = 400, interval: float = 1e-4, size: int = 4096
) -> dict[str, float]:
    """p99 message latency (µs) on a skewed-rail cluster, selection on/off.

    The cluster lists a slow TCP rail *first* and a fast MX rail second,
    so the engine's in-order rail scan parks sparse traffic on TCP.
    With tail-acting selection on, the selector observes TCP's p99 blow
    the budget and reorders MX ahead of it.  p99 is measured over the
    second half of the run — the selector needs ``min_samples`` spans
    on the slow rail before it can act, and the warmup window is the
    price of learning, not the steady state being compared.
    """
    warmup = count // 2 * interval

    def one_run(selection: bool) -> float:
        tuner_spec = None
        if selection:
            tuner_spec = TunerConfig(
                min_dwell=4,
                drift_window=3,
                rails=RailsConfig(
                    p99_budget_us=50.0, min_samples=16, refresh_every=8
                ),
            )
        cluster = Cluster(
            n_nodes=2,
            networks=[("tcp", 1), ("mx", 1)],
            engine="optimizing",
            strategy="aggregate",
            seed=11,
            observability={"sample_interval": 1e-4},
            tuner=tuner_spec,
        )
        api = cluster.api("n0")
        flow = api.open_flow("n1")
        for i in range(count):
            cluster.sim.at(i * interval, lambda: api.send(flow, size))
        cluster.run_until_idle()
        report = cluster.report(since=warmup)
        return report.latency.p99 * 1e6

    return {
        "skewed_rail/p99_us/selection_off": one_run(False),
        "skewed_rail/p99_us/selection_on": one_run(True),
    }


def run_suite(*, quick: bool = False) -> dict[str, float]:
    """Run every tuner benchmark; returns a flat metric mapping."""
    scale = 0.25 if quick else 1.0
    metrics: dict[str, float] = {}
    metrics.update(
        decision_rates(iterations=max(int(300 * scale), 50), repeats=3 if quick else 5)
    )
    metrics.update(stable_fraction(count=max(int(400 * scale), 100)))
    metrics.update(skewed_rail_p99(count=max(int(400 * scale), 200)))
    return metrics


def check_invariants(metrics: dict[str, float]) -> list[str]:
    """The acceptance invariants; returns human-readable violations."""
    failures: list[str] = []
    general = metrics[f"decisions_per_sec/general/d{_DEPTH}"]
    specialized = metrics[f"decisions_per_sec/specialized/d{_DEPTH}"]
    if specialized <= general:
        failures.append(
            f"specialized fast path is not faster: {specialized:,.0f}/s vs "
            f"general {general:,.0f}/s"
        )
    fraction = metrics["stable/specialized_fraction"]
    if fraction < MIN_SPECIALIZED_FRACTION:
        failures.append(
            f"stable regime served only {fraction:.1%} of decisions "
            f"specialized (floor {MIN_SPECIALIZED_FRACTION:.0%})"
        )
    p99_off = metrics["skewed_rail/p99_us/selection_off"]
    p99_on = metrics["skewed_rail/p99_us/selection_on"]
    if not p99_on < p99_off:
        failures.append(
            f"rail selection did not lower p99: on {p99_on:,.1f}us vs "
            f"off {p99_off:,.1f}us"
        )
    return failures


def _render(metrics: dict[str, float]) -> str:
    width = max(len(k) for k in metrics)
    lines = []
    for name, value in sorted(metrics.items()):
        if "per_sec" in name:
            lines.append(f"  {name.ljust(width)}  {value:>14,.0f}/s")
        elif "fraction" in name:
            lines.append(f"  {name.ljust(width)}  {value:>14.1%}")
        elif "p99_us" in name:
            lines.append(f"  {name.ljust(width)}  {value:>12,.1f}us")
        else:
            lines.append(f"  {name.ljust(width)}  {value:>14,.0f}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the suite, write JSON, optionally gate."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.tuner", description=__doc__
    )
    parser.add_argument(
        "--out", default=RESULT_FILE, help="result JSON path (default: %(default)s)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when any tuner invariant is violated",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced iterations/counts"
    )
    args = parser.parse_args(argv)

    start = time.perf_counter()
    metrics = run_suite(quick=args.quick)
    elapsed = time.perf_counter() - start
    print("== tuner benchmarks ==")
    print(_render(metrics))
    print(f"  ({elapsed:.1f}s)")

    payload = {
        "schema": 1,
        "suite": "tuner",
        "quick": args.quick,
        "metrics": metrics,
    }
    Path(args.out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"\nresults written to {args.out}")

    if args.check:
        failures = check_invariants(metrics)
        if failures:
            print("\ntuner invariants violated:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("all tuner invariants hold")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
