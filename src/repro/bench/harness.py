"""Experiment result container, table formatting, result persistence."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

__all__ = ["ExperimentResult", "format_table", "persist_result"]


@dataclass(slots=True)
class ExperimentResult:
    """One experiment's output: an id, a table, and free-form notes."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Optional figure declaration: (x_column, [y_columns], log_x) —
    #: rendered by repro.bench.figures.render_result_figure.
    figure: tuple[str, list[str], bool] | None = None

    def add_row(self, **values: Any) -> None:
        """Append one table row (keys must match ``columns``)."""
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row missing columns {sorted(missing)}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """One column as a list (series view for figures)."""
        return [row[name] for row in self.rows]

    def note(self, text: str) -> None:
        """Attach a free-form observation printed under the table."""
        self.notes.append(text)

    def render(self) -> str:
        """The full printable block: header, table, notes."""
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(format_table(self.columns, self.rows))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def persist_result(result: ExperimentResult, directory: str | None = None) -> Path:
    """Write the rendered table to ``<directory>/<id>.txt``.

    ``directory`` defaults to the ``REPRO_RESULTS_DIR`` environment
    variable, falling back to ``benchmarks/results`` under the current
    working directory.  Returns the written path.
    """
    if directory is None:
        directory = os.environ.get("REPRO_RESULTS_DIR", "benchmarks/results")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    target = path / f"{result.experiment_id}.txt"
    target.write_text(result.render() + "\n", encoding="utf-8")
    return target


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(columns: Sequence[str], rows: Sequence[dict]) -> str:
    """Fixed-width text table."""
    cells = [[_format_cell(row[c]) for c in columns] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.rjust(w) for col, w in zip(columns, widths))
    separator = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in cells
    ]
    return "\n".join([header, separator, *body])
