"""Live-transport benchmarks: the engine over real loopback sockets.

Not a paper table and not a microbenchmark of the optimizer: this
measures the *live plane* (:mod:`repro.live`) end to end — peer
processes, stream framing, socket-drain activation — on two canonical
shapes:

* **ping-pong** — one eager message bouncing between two peers; reports
  the measured round-trip time (wall clock, client side).  This is the
  live counterpart of the paper's base-latency microbenchmark.
* **multi-flow aggregation** — several concurrent eager streams between
  the same pair of nodes; reports the achieved aggregation ratio
  (segments per data packet).  Ratios above 1 mean the unmodified
  optimizing engine coalesced backlog that accumulated while the socket
  was busy — the paper's core effect, reproduced over a real transport.
* **chaos recovery** — the same ping-pong under seeded wire loss and
  periodic hard disconnects; reports retransmit work and verifies the
  run still completes byte-identical (the failure model's acceptance
  shape, measured rather than asserted).

Wall-clock rates on loopback are scheduler-noisy, so ``--check`` gates
*structure*, not speed: every payload byte verified, zero corruption,
aggregation ratio > 1, positive RTTs.  The suite emits
``BENCH_live.json`` in the same schema family as ``BENCH_kernel.json``.

Usage::

    python -m repro.bench.live                  # print + BENCH_live.json
    python -m repro.bench.live --quick --check  # CI smoke gate
    python -m repro.bench.live --transport tcp  # TCP loopback mesh
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.live import LiveRunResult, run_live_scenario

__all__ = [
    "RESULT_FILE",
    "aggregation_scenario",
    "chaos_scenario",
    "pingpong_scenario",
    "run_suite",
    "check_structure",
]

#: Default location of the emitted results (repository root).
RESULT_FILE = "BENCH_live.json"

#: Hard wall-clock budget per scenario; generous because CI runners
#: schedule subprocess start-up erratically.
RUN_TIMEOUT = 60.0


def pingpong_scenario(count: int) -> dict[str, Any]:
    """Two peers, one small eager message bouncing ``count`` times."""
    return {
        "name": "live-bench-pingpong",
        "cluster": {
            "n_nodes": 2,
            "networks": [["mx", 1]],
            "engine": "optimizing",
            "strategy": "aggregate",
            "seed": 0,
        },
        "workloads": [
            {"app": "pingpong", "src": "n0", "dst": "n1", "size": 64, "count": count},
        ],
    }


def aggregation_scenario(per_flow: int) -> dict[str, Any]:
    """Three concurrent eager streams n0 -> n1, ``per_flow`` messages each.

    All messages are submitted with zero inter-send interval, so backlog
    builds while the socket drains and the aggregation strategy gets its
    coalescing opportunities.
    """
    return {
        "name": "live-bench-aggregation",
        "cluster": {
            "n_nodes": 2,
            "networks": [["mx", 1]],
            "engine": "optimizing",
            "strategy": "aggregate",
            "seed": 0,
        },
        "workloads": [
            {"app": "stream", "src": "n0", "dst": "n1", "size": size,
             "count": per_flow, "interval": 0.0}
            for size in (512, 256, 128)
        ],
    }


def chaos_scenario(count: int) -> dict[str, Any]:
    """Ping-pong under seeded drop + periodic hard disconnects.

    Light chaos (3% drop, a disconnect every 60 records) so the run
    exercises retransmit/reconnect without drowning in RTO waits; the
    seed pins the fault sequence run-to-run.
    """
    scenario = pingpong_scenario(count)
    scenario["name"] = "live-bench-chaos"
    scenario["faults"] = {
        "drop": 0.03,
        "disconnect": {"every": 60},
        "seed": 11,
        "reliability": {"max_retries": 12, "rto": 0.05, "backoff": 1.5},
    }
    return scenario


def _pingpong_metrics(result: LiveRunResult) -> dict[str, float]:
    rtts = sorted(result.rtts)
    n = len(rtts)
    return {
        "pingpong/rtt_samples": float(n),
        "pingpong/rtt_mean_us": (sum(rtts) / n * 1e6) if n else 0.0,
        "pingpong/rtt_p50_us": (rtts[n // 2] * 1e6) if n else 0.0,
        "pingpong/rtt_min_us": (rtts[0] * 1e6) if n else 0.0,
        "pingpong/bytes_verified": float(result.bytes_verified),
        "pingpong/corrupt_slices": float(result.corrupt_slices),
        "pingpong/messages": float(result.report.messages),
    }


def _aggregation_metrics(result: LiveRunResult) -> dict[str, float]:
    report = result.report
    return {
        "aggregation/ratio": report.aggregation_ratio,
        "aggregation/data_packets": float(report.data_packets),
        "aggregation/messages": float(report.messages),
        "aggregation/total_bytes": float(report.total_bytes),
        "aggregation/bytes_verified": float(result.bytes_verified),
        "aggregation/corrupt_slices": float(result.corrupt_slices),
        "aggregation/throughput_MBps": report.throughput / 1e6,
    }


def _chaos_metrics(result: LiveRunResult) -> dict[str, float]:
    """Recovery health from a chaos-injected ping-pong run.

    The invariant is the acceptance shape of the failure model: faults
    visibly happened (drops, retransmits) and visibly did not matter
    (every byte verified, zero corruption, nothing abandoned).
    """
    report = result.report
    total = float(report.total_bytes)
    return {
        "chaos/messages": float(report.messages),
        "chaos/total_bytes": total,
        "chaos/bytes_verified": float(result.bytes_verified),
        "chaos/verified_fraction": (result.bytes_verified / total) if total else 0.0,
        "chaos/corrupt_slices": float(result.corrupt_slices),
        "chaos/retransmits": float(report.retransmits),
        "chaos/packets_dropped": float(report.packets_dropped),
        "chaos/lost_messages": float(report.lost_messages),
        "chaos/degraded": float(report.degraded),
    }


def _traced_metrics(result: LiveRunResult) -> dict[str, float]:
    """Cross-peer correlation health from a traced ping-pong run.

    RTT runs stay untraced so the latency numbers keep their meaning;
    this separate (short) run gates the distributed-observability
    machinery itself: every delivered message should yield a correlated
    wire crossing, and clock alignment should never have to clamp one.
    """
    return {
        "traced/messages": float(result.report.messages),
        "traced/flow_crossings": float(result.crossings_matched),
        "traced/crossings_clamped": float(result.crossings_clamped),
        "traced/peers_aligned": float(len(result.offsets)),
    }


def run_suite(
    *, quick: bool = False, transport: str = "uds", timeout: float = RUN_TIMEOUT
) -> dict[str, float]:
    """Run the live scenarios; returns a flat metric mapping."""
    pp_count = 10 if quick else 50
    per_flow = 10 if quick else 40
    metrics: dict[str, float] = {}
    result = run_live_scenario(
        pingpong_scenario(pp_count), transport=transport, timeout=timeout
    )
    metrics.update(_pingpong_metrics(result))
    result = run_live_scenario(
        aggregation_scenario(per_flow), transport=transport, timeout=timeout
    )
    metrics.update(_aggregation_metrics(result))
    result = run_live_scenario(
        pingpong_scenario(5), transport=transport, timeout=timeout, trace=True
    )
    metrics.update(_traced_metrics(result))
    result = run_live_scenario(
        chaos_scenario(10 if quick else 30), transport=transport, timeout=timeout
    )
    metrics.update(_chaos_metrics(result))
    return metrics


def check_structure(metrics: dict[str, float]) -> list[str]:
    """Structural gate: correctness invariants, not wall-clock speed."""
    failures = []
    if metrics.get("pingpong/rtt_samples", 0.0) <= 0:
        failures.append("pingpong produced no RTT samples")
    if metrics.get("pingpong/rtt_mean_us", 0.0) <= 0:
        failures.append("pingpong mean RTT is not positive")
    for suite in ("pingpong", "aggregation"):
        if metrics.get(f"{suite}/corrupt_slices", 0.0) != 0:
            failures.append(f"{suite}: corrupted payload slices detected")
        if metrics.get(f"{suite}/bytes_verified", 0.0) <= 0:
            failures.append(f"{suite}: no payload bytes were verified")
    if metrics.get("aggregation/ratio", 0.0) <= 1.0:
        failures.append(
            f"aggregation ratio {metrics.get('aggregation/ratio', 0.0):.2f} "
            "is not > 1: the engine never coalesced backlog"
        )
    if metrics.get("traced/flow_crossings", 0.0) < metrics.get("traced/messages", 0.0):
        failures.append(
            f"traced run correlated {metrics.get('traced/flow_crossings', 0.0):.0f} "
            f"wire crossings for {metrics.get('traced/messages', 0.0):.0f} "
            "delivered messages: correlation ids were lost in flight"
        )
    if metrics.get("traced/crossings_clamped", 0.0) != 0:
        failures.append(
            f"{metrics.get('traced/crossings_clamped', 0.0):.0f} crossings "
            "needed send>recv clamping: clock alignment failed"
        )
    if metrics.get("chaos/verified_fraction", 0.0) != 1.0:
        failures.append(
            f"chaos run verified only "
            f"{metrics.get('chaos/verified_fraction', 0.0):.4f} of its "
            "bytes: recovery was not byte-identical"
        )
    if metrics.get("chaos/corrupt_slices", 0.0) != 0:
        failures.append("chaos: corrupted payload slices reached an application")
    if metrics.get("chaos/retransmits", 0.0) <= 0:
        failures.append(
            "chaos run saw no retransmits: the fault injector was inert"
        )
    if metrics.get("chaos/degraded", 0.0) != 0 or metrics.get(
        "chaos/lost_messages", 0.0
    ) != 0:
        failures.append("chaos run degraded: wire faults alone lost messages")
    return failures


def _render(metrics: dict[str, float]) -> str:
    width = max(len(k) for k in metrics)
    return "\n".join(
        f"  {name.ljust(width)}  {value:>14,.2f}"
        for name, value in sorted(metrics.items())
    )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: run the suite, write JSON, optionally gate."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.live", description=__doc__
    )
    parser.add_argument(
        "--out", default=RESULT_FILE, help="result JSON path (default: %(default)s)"
    )
    parser.add_argument(
        "--transport",
        choices=("uds", "tcp"),
        default="uds",
        help="peer interconnect (default: %(default)s)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=RUN_TIMEOUT,
        help="wall-clock budget per scenario (default: %(default)ss)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when a structural invariant fails (corruption, "
        "aggregation ratio <= 1, missing RTTs)",
    )
    parser.add_argument("--quick", action="store_true", help="reduced message counts")
    args = parser.parse_args(argv)

    metrics = run_suite(
        quick=args.quick, transport=args.transport, timeout=args.timeout
    )
    print(f"== live transport benchmarks ({args.transport} loopback) ==")
    print(_render(metrics))

    payload = {
        "schema": 1,
        "suite": "live",
        "quick": args.quick,
        "transport": args.transport,
        "metrics": metrics,
    }
    Path(args.out).write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"\nresults written to {args.out}")

    if args.check:
        failures = check_structure(metrics)
        if failures:
            print("\nlive structural checks failed:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("structural checks passed (byte-identical, aggregation > 1)")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())
