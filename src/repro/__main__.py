"""Top-level command line interface.

Usage::

    python -m repro info                 # versions, technologies, strategies
    python -m repro run scenario.json    # execute a declarative scenario
    python -m repro run scenario.json --trace-out trace.json \
        --metrics-out metrics.prom --sample-interval 1e-5
    python -m repro tune scenario.json --json  # online adaptation plane on
    python -m repro live run scenario.json --serve :9464 --trace-out merged.json
    python -m repro obs analyze trace.json   # timelines + decision summary
    python -m repro obs diff base.json cand.json --check   # regression gate
    python -m repro obs tail merged.jsonl --scenario s.json --check  # SLO gate
    python -m repro obs why trace.jsonl --slowest 5   # causal latency blame
    python -m repro bench [ids] [--quick]  # alias for python -m repro.bench
"""

from __future__ import annotations

import argparse
import math
import sys

import repro
from repro.util.units import format_rate, format_time


def _cmd_info(_args) -> int:
    from repro.bench.experiments import ALL_EXPERIMENTS
    from repro.core.strategies import STRATEGY_TYPES
    from repro.network.technologies import TECHNOLOGIES
    from repro.runtime.scenario import APP_TYPES, POLICY_TYPES

    print(f"repro {repro.__version__} — NewMadeleine-style optimization engine")
    print(f"technologies : {', '.join(sorted(TECHNOLOGIES))}")
    print(f"strategies   : {', '.join(sorted(STRATEGY_TYPES))}")
    print(f"policies     : {', '.join(sorted(POLICY_TYPES))}")
    print(f"workload apps: {', '.join(sorted(APP_TYPES))}")
    print(f"experiments  : {', '.join(ALL_EXPERIMENTS)}")
    return 0


def _parse_faults_arg(value: str) -> dict | None:
    """Parse the ``--faults`` override: ``off`` or ``key=val,key=val``.

    Values parse as floats; ``drop=0.05,jitter=1e-6`` is the typical
    shape.  Nested blocks (outages, per-NIC overrides) stay in the
    scenario file — the CLI knob covers the scalar lotteries plus
    ``seed``.
    """
    from repro.util.errors import ConfigurationError

    if value == "off":
        return None
    faults: dict = {}
    for pair in value.split(","):
        key, sep, raw = pair.partition("=")
        key = key.strip()
        if not sep or not key:
            raise ConfigurationError(
                f"--faults expects 'off' or key=val[,key=val...], got {value!r}"
            )
        try:
            faults[key] = int(raw) if key == "seed" else float(raw)
        except ValueError:
            raise ConfigurationError(
                f"--faults value for {key!r} is not a number: {raw!r}"
            ) from None
    return faults


def _cmd_run(args) -> int:
    import json

    from repro.network.virtual import TrafficClass
    from repro.runtime.scenario import load_scenario_file, run_scenario

    scenario = load_scenario_file(args.scenario)
    if args.faults is not None:
        override = _parse_faults_arg(args.faults)
        if override is None:
            scenario.pop("faults", None)
        else:
            merged = dict(scenario.get("faults", {}))
            merged.update(override)
            scenario["faults"] = merged
    if args.tuner == "off":
        scenario.pop("tuner", None)
    elif args.tuner == "on":
        tuner_spec = dict(scenario.get("tuner", {}))
        tuner_spec["enabled"] = True
        scenario["tuner"] = tuner_spec
    if args.trace_out or args.metrics_out or args.sample_interval is not None:
        obs_spec = dict(scenario.get("observability", {}))
        if args.sample_interval is not None:
            obs_spec["sample_interval"] = args.sample_interval
        if args.trace_out:
            obs_spec["trace"] = True  # the explicit flag beats the scenario
        scenario["observability"] = obs_spec
    report, cluster, apps = run_scenario(scenario)
    name = scenario.get("name", args.scenario)
    if args.json:
        incomplete = [a.name for a in apps if not a.done.done]
        payload = {
            "scenario": name,
            "virtual_time": cluster.sim.now,
            "report": report.to_dict(),
            "incomplete_workloads": incomplete,
        }
        if cluster.tuner is not None:
            payload["tuner"] = cluster.tuner.summary()
        print(json.dumps(payload, indent=2))
        return 1 if incomplete else 0
    print(f"== scenario: {name} ==")
    print(f"virtual time         : {format_time(cluster.sim.now)}")
    print(f"messages completed   : {report.messages}")
    print(f"payload delivered    : {report.total_bytes} B")
    print(f"throughput           : {format_rate(report.throughput)}")
    print(f"mean latency         : {report.latency.mean * 1e6:.2f} us")
    print(f"p99 latency          : {report.latency.p99 * 1e6:.2f} us")
    if not math.isnan(report.latency_p99_us):
        print(
            f"sketch p99 / p999    : {report.latency_p99_us:.2f} / "
            f"{report.latency_p999_us:.2f} us"
        )
    print(f"network transactions : {report.network_transactions}")
    print(f"aggregation ratio    : {report.aggregation_ratio:.2f}")
    print(f"rendezvous transfers : {report.rdv_count}")
    if cluster.fault_plane is not None:
        print(f"packets dropped      : {report.packets_dropped}")
        print(f"packets corrupted    : {report.packets_corrupted}")
        print(f"packets duplicated   : {report.packets_duplicated}")
        print(f"retransmits          : {report.retransmits}")
        print(f"failovers            : {report.failovers}")
        print(f"rdv timeouts         : {report.rdv_timeouts}")
    if report.latency_by_class:
        print("per-class mean latency:")
        for traffic_class in TrafficClass:
            summary = report.latency_by_class.get(traffic_class)
            if summary is not None:
                print(
                    f"  {traffic_class.value:<8} {summary.mean * 1e6:10.2f} us "
                    f"(n={summary.count})"
                )
    if args.histogram and report.messages > 1:
        from repro.util.stats import ascii_histogram

        latencies_us = [r.latency * 1e6 for r in cluster.metrics.records]
        print("latency histogram (us):")
        print(ascii_histogram(latencies_us, fmt="{:.1f}"))
    if cluster.tuner is not None:
        summary = cluster.tuner.summary()
        totals = summary["totals"]
        print("tuner:")
        print(
            f"  decisions          : {totals['decisions']} "
            f"({totals['specialized']} specialized)"
        )
        print(
            f"  specializations    : {totals['installs']} installed, "
            f"{totals['invalidations']} invalidated"
        )
        for node, state in summary["nodes"].items():
            tracker = state["tracker"]
            active = state["active"]
            line = (
                f"  {node:<6} regime={tracker['regime']} "
                f"(flips={tracker['flips']}) "
                f"specialized={state['specialized_fraction']:.0%}"
            )
            if active is not None:
                line += f" active={active['id']}"
            sweep = state.get("sweep")
            if sweep is not None and sweep["best"] is not None:
                window, budget = sweep["best"]
                line += f" sweep-best=w{window}/b{budget}"
            print(line)
    plane = cluster.obs
    if plane is not None:
        plane.finalize()
        if plane.sink is not None and plane.sink.dropped:
            print(
                f"flight recorder      : kept {len(plane.sink.events)} of "
                f"{plane.sink.seen} events (oldest evicted)"
            )
        if args.trace_out:
            fmt = plane.write_trace(args.trace_out)
            print(f"trace written        : {args.trace_out} ({fmt})")
        if args.metrics_out:
            plane.write_metrics(args.metrics_out)
            print(f"metrics written      : {args.metrics_out} (prometheus)")
    incomplete = [a.name for a in apps if not a.done.done]
    if incomplete:
        print(f"WARNING: workloads not finished: {incomplete}")
        return 1
    return 0


def _cmd_live_run(args) -> int:
    import json

    from repro.live import run_live_scenario
    from repro.runtime.scenario import load_scenario_file

    scenario = load_scenario_file(args.scenario)
    if args.chaos:
        import os as _os

        scenario = dict(scenario)
        if _os.path.exists(args.chaos):
            with open(args.chaos, encoding="utf-8") as f:
                scenario["faults"] = json.load(f)
        else:
            scenario["faults"] = json.loads(args.chaos)
    observability = dict(scenario.get("observability", {}))
    if args.sample_interval is not None:
        observability["sample_interval"] = args.sample_interval
    if args.trace_out:
        observability["trace"] = True
    result = run_live_scenario(
        scenario,
        transport=args.transport,
        time_scale=args.time_scale,
        trace=bool(args.trace_out),
        timeout=args.timeout,
        observability=observability or None,
        serve=args.serve,
    )
    report = result.report
    if args.trace_out:
        from repro.obs.export import write_trace

        fmt = write_trace(args.trace_out, result.aligned_events)
    if args.metrics_out and result.cluster_registry is not None:
        with open(args.metrics_out, "w", encoding="utf-8") as f:
            f.write(result.cluster_registry.to_prometheus())
    name = scenario.get("name", args.scenario)
    if args.json:
        payload = {
            "scenario": name,
            "transport": args.transport,
            "report": report.to_dict(),
            "bytes_verified": result.bytes_verified,
            "corrupt_slices": result.corrupt_slices,
            "rtt_samples": len(result.rtts),
            "clock_offsets": result.offsets,
            "crossings_matched": result.crossings_matched,
            "crossings_clamped": result.crossings_clamped,
            "tails": result.tails,
            "tuner": result.tuner,
            "dead_peers": [
                {
                    "rank": d.rank,
                    "node": d.node,
                    "reason": d.reason,
                    "time_to_detect": d.time_to_detect,
                }
                for d in result.dead_peers
            ],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"== live scenario: {name} ({args.transport}) ==")
    print(f"wall time            : {format_time(report.duration)}")
    print(f"messages delivered   : {report.messages}")
    print(f"payload delivered    : {report.total_bytes} B")
    print(f"bytes verified       : {result.bytes_verified} (corrupt: {result.corrupt_slices})")
    print(f"throughput           : {format_rate(report.throughput)}")
    print(f"mean latency         : {report.latency.mean * 1e6:.2f} us")
    print(f"p99 latency          : {report.latency.p99 * 1e6:.2f} us")
    if not math.isnan(report.latency_p99_us):
        print(
            f"sketch p99 / p999    : {report.latency_p99_us:.2f} / "
            f"{report.latency_p999_us:.2f} us"
        )
    print(f"network transactions : {report.network_transactions}")
    print(f"aggregation ratio    : {report.aggregation_ratio:.2f}")
    print(f"rendezvous transfers : {report.rdv_count}")
    if result.tuner.get("enabled"):
        totals = result.tuner["totals"]
        print(
            f"tuner                : "
            f"{int(totals.get('specialized', 0))}/"
            f"{int(totals.get('decisions', 0))} specialized "
            f"({result.tuner['specialized_fraction']:.0%}), "
            f"{int(totals.get('installs', 0))} installs, "
            f"{int(totals.get('invalidations', 0))} invalidations"
        )
    if report.retransmits or report.packets_dropped:
        print(
            f"chaos recovery       : {report.retransmits} retransmits "
            f"({report.packets_dropped} dropped, "
            f"{report.packets_corrupted} corrupted on the wire)"
        )
    if report.degraded:
        dead = ", ".join(
            f"{d.node} ({d.reason}, {d.time_to_detect:.2f}s)"
            for d in result.dead_peers
        )
        print(f"DEGRADED run         : lost {report.lost_messages} messages; dead: {dead}")
    if result.rtts:
        mean_rtt = sum(result.rtts) / len(result.rtts)
        print(f"mean ping-pong RTT   : {mean_rtt * 1e6:.2f} us (n={len(result.rtts)})")
    if result.offsets:
        worst = max(abs(v) for v in result.offsets.values())
        print(
            f"clock offsets        : {len(result.offsets)} peers aligned "
            f"(max |offset| {worst * 1e6:.2f} us)"
        )
    if result.crossings_matched:
        print(
            f"wire crossings       : {result.crossings_matched} correlated "
            f"({result.crossings_clamped} clamped)"
        )
    if args.trace_out:
        print(f"trace written        : {args.trace_out} ({fmt})")
    if args.metrics_out and result.cluster_registry is not None:
        print(f"metrics written      : {args.metrics_out} (prometheus)")
    return 0


def _cmd_obs_analyze(args) -> int:
    from repro.obs.analyze import main as analyze_main

    return analyze_main(args)


def _cmd_obs_diff(args) -> int:
    from repro.obs.diff import main as diff_main

    return diff_main(args)


def _cmd_obs_tail(args) -> int:
    from repro.obs.tails import main as tail_main

    return tail_main(args)


def _cmd_obs_why(args) -> int:
    from repro.obs.causal import main as why_main

    return why_main(args)


def _cmd_bench(args) -> int:
    from repro.bench.__main__ import main as bench_main

    forwarded = list(args.experiments)
    if args.quick:
        forwarded.append("--quick")
    if args.chart:
        forwarded.append("--chart")
    return bench_main(forwarded)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("info", help="list registered components").set_defaults(
        func=_cmd_info
    )

    run_parser = subparsers.add_parser("run", help="execute a scenario file")
    run_parser.add_argument("scenario", help="path to a scenario JSON file")
    run_parser.add_argument(
        "--histogram", action="store_true", help="show the latency histogram"
    )
    run_parser.add_argument(
        "--faults",
        metavar="SPEC",
        help=(
            "override the scenario's faults block: 'off' to disable, or "
            "key=val pairs, e.g. --faults drop=0.05,duplicate=0.01,seed=7"
        ),
    )
    run_parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help=(
            "write the captured trace: .jsonl/.ndjson for JSON Lines, "
            "anything else for Chrome trace JSON (open in ui.perfetto.dev)"
        ),
    )
    run_parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write end-of-run metrics as Prometheus text exposition",
    )
    run_parser.add_argument(
        "--sample-interval",
        type=float,
        metavar="SECONDS",
        help="periodic time-series sample interval in simulated seconds",
    )
    run_parser.add_argument(
        "--tuner",
        choices=("on", "off"),
        help=(
            "override the scenario's tuner block: 'on' enables the online "
            "adaptation plane (defaults if the scenario has no block), "
            "'off' removes it (dispatch byte-identical to a tuner-less run)"
        ),
    )
    run_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full session report as JSON on stdout (no human text)",
    )
    run_parser.set_defaults(func=_cmd_run)

    tune_parser = subparsers.add_parser(
        "tune",
        help="execute a scenario with the online adaptation plane forced on",
    )
    tune_parser.add_argument("scenario", help="path to a scenario JSON file")
    tune_parser.add_argument(
        "--trace-out", metavar="PATH", help="write the captured trace"
    )
    tune_parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write end-of-run metrics as Prometheus text exposition",
    )
    tune_parser.add_argument(
        "--sample-interval",
        type=float,
        metavar="SECONDS",
        help="periodic time-series sample interval in simulated seconds",
    )
    tune_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the full session report (incl. tuner state) as JSON",
    )
    tune_parser.set_defaults(
        func=_cmd_run, tuner="on", faults=None, histogram=False
    )

    live_parser = subparsers.add_parser(
        "live", help="run the engine over real sockets (repro.live)"
    )
    live_sub = live_parser.add_subparsers(dest="live_command", required=True)
    live_run = live_sub.add_parser(
        "run", help="execute a scenario file over a local socket mesh"
    )
    live_run.add_argument("scenario", help="path to a scenario JSON file")
    live_run.add_argument(
        "--transport",
        choices=("uds", "tcp"),
        default="uds",
        help="peer interconnect: Unix-domain sockets (default) or TCP loopback",
    )
    live_run.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        help="real seconds per virtual second (stretch engine delays)",
    )
    live_run.add_argument(
        "--timeout",
        type=float,
        default=60.0,
        help="hard wall-clock budget before the run is declared hung",
    )
    live_run.add_argument(
        "--trace-out",
        metavar="PATH",
        help=(
            "write the cross-peer merged trace, clock-aligned with flow "
            "events per wire crossing (.jsonl/.ndjson or Chrome JSON)"
        ),
    )
    live_run.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the merged cluster registry as Prometheus text",
    )
    live_run.add_argument(
        "--sample-interval",
        type=float,
        metavar="SECONDS",
        help="periodic per-peer time-series sample interval (virtual seconds)",
    )
    live_run.add_argument(
        "--serve",
        metavar="[HOST:]PORT",
        help=(
            "expose live cluster /metrics (Prometheus) and /status (JSON) "
            "over HTTP while the run is in flight, e.g. --serve :9464"
        ),
    )
    live_run.add_argument(
        "--chaos",
        metavar="SPEC",
        help=(
            "chaos-inject the run: a scenario 'faults' block as inline JSON "
            "or a path to a JSON file, e.g. "
            "--chaos '{\"drop\": 0.05, \"disconnect\": {\"every\": 40}, \"seed\": 7}' "
            "(overrides the scenario's own faults block)"
        ),
    )
    live_run.add_argument(
        "--json", action="store_true", help="emit the report as JSON on stdout"
    )
    live_run.set_defaults(func=_cmd_live_run)

    obs_parser = subparsers.add_parser("obs", help="observability tools")
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)
    analyze_parser = obs_sub.add_parser(
        "analyze", help="reconstruct timelines + decision summary from a trace"
    )
    analyze_parser.add_argument("trace", help="trace file (.jsonl or Chrome JSON)")
    analyze_parser.add_argument(
        "--width", type=int, default=60, help="sparkline width in columns"
    )
    analyze_parser.add_argument(
        "--top", type=int, default=5, help="channels to list in the miss summary"
    )
    analyze_parser.set_defaults(func=_cmd_obs_analyze)

    diff_parser = obs_sub.add_parser(
        "diff",
        help="compare two traces or BENCH_*.json files metric-by-metric",
    )
    diff_parser.add_argument("baseline", help="baseline trace or bench JSON")
    diff_parser.add_argument("candidate", help="candidate trace or bench JSON")
    diff_parser.add_argument(
        "--threshold",
        type=float,
        default=None,
        help="relative change treated as a regression (default 0.2 = 20%%)",
    )
    diff_parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="GLOB",
        help="metric keys to exclude (fnmatch glob, repeatable)",
    )
    diff_parser.add_argument(
        "--check",
        action="store_true",
        help="exit nonzero when any non-ignored metric regressed",
    )
    diff_parser.set_defaults(func=_cmd_obs_diff)

    tail_parser = obs_sub.add_parser(
        "tail",
        help="per-edge tail-latency report + SLO burn rates from a trace",
    )
    tail_parser.add_argument(
        "trace", help="trace file (.jsonl or Chrome JSON; merged live or sim)"
    )
    tail_parser.add_argument(
        "--scenario",
        metavar="PATH",
        help=(
            "scenario JSON whose observability.slo block defines the "
            "objectives to evaluate (multi-window burn rates)"
        ),
    )
    tail_parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit nonzero when no edge was correlated or any SLO is "
            "violated in every configured window"
        ),
    )
    tail_parser.set_defaults(func=_cmd_obs_tail)

    why_parser = obs_sub.add_parser(
        "why",
        help="causal latency attribution: why was this message late?",
    )
    why_parser.add_argument(
        "trace", help="trace file (.jsonl or Chrome JSON; merged live or sim)"
    )
    why_parser.add_argument(
        "--message",
        metavar="ID",
        help="explain one message: 'NODE#mID' (e.g. n0#m3) or a bare id",
    )
    why_parser.add_argument(
        "--slowest",
        type=int,
        default=5,
        metavar="K",
        help="show waterfalls for the K slowest messages (default 5)",
    )
    why_parser.add_argument(
        "--edge",
        metavar="SRC:DST",
        help="restrict the report to one edge, e.g. n0:n1",
    )
    why_parser.add_argument(
        "--json",
        action="store_true",
        help="emit the attribution report as JSON on stdout",
    )
    why_parser.set_defaults(func=_cmd_obs_why)

    bench_parser = subparsers.add_parser("bench", help="run experiments")
    bench_parser.add_argument("experiments", nargs="*", metavar="ID")
    bench_parser.add_argument("--quick", action="store_true")
    bench_parser.add_argument("--chart", action="store_true")
    bench_parser.set_defaults(func=_cmd_bench)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
