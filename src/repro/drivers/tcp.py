"""Mad.Driver/TCP — kernel TCP/GigE fallback driver.

A deliberately constrained profile: no PIO/DMA distinction visible to
the user, no hardware gather (writev is modelled as by-copy because the
kernel copies anyway), no rendezvous (the stream flow-controls itself).
Exercises the engine's capability-degradation paths.
"""

from __future__ import annotations

from repro.drivers.base import Driver
from repro.drivers.capabilities import DriverCapabilities
from repro.network.nic import NIC
from repro.util.units import KiB

__all__ = ["TcpDriver", "TCP_CAPABILITIES"]

TCP_CAPABILITIES = DriverCapabilities(
    technology="tcp",
    supports_pio=False,
    supports_dma=True,
    pio_threshold=0,
    supports_gather=False,
    max_gather_entries=1,
    max_aggregate_size=64 * KiB,
    eager_threshold=64 * KiB,
    supports_rdv=False,
    rdv_ack_delay=0.0,
    max_channels=4,
)


class TcpDriver(Driver):
    """Driver for TCP/GigE sockets."""

    def __init__(self, nic: NIC, caps: DriverCapabilities = TCP_CAPABILITIES) -> None:
        super().__init__(nic, caps)
