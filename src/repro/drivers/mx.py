"""Mad.Driver/MX — the Myrinet MX driver (the paper's beta platform)."""

from __future__ import annotations

from repro.drivers.base import Driver
from repro.drivers.capabilities import DriverCapabilities
from repro.network.nic import NIC
from repro.util.units import KiB, us

__all__ = ["MxDriver", "MX_CAPABILITIES"]

#: Capability profile of MX over Myrinet 2000: small-message PIO up to
#: 4 KiB, 32 KiB eager/aggregate window (the MX medium-message cutoff),
#: hardware gather with a modest descriptor budget.
MX_CAPABILITIES = DriverCapabilities(
    technology="mx",
    supports_pio=True,
    supports_dma=True,
    pio_threshold=4 * KiB,
    supports_gather=True,
    max_gather_entries=16,
    max_aggregate_size=32 * KiB,
    eager_threshold=32 * KiB,
    supports_rdv=True,
    rdv_ack_delay=2.5 * us,
    max_channels=8,
)


class MxDriver(Driver):
    """Driver for Myrinet/MX NICs."""

    def __init__(self, nic: NIC, caps: DriverCapabilities = MX_CAPABILITIES) -> None:
        super().__init__(nic, caps)
