"""Driver registry: technology tag → driver class.

Mirrors Madeleine's driver loading: the runtime looks a technology up by
name when assembling a node, so adding a technology is one registry
entry plus a capability profile.
"""

from __future__ import annotations

from repro.drivers.base import Driver
from repro.drivers.elan import ElanDriver
from repro.drivers.ibverbs import IbverbsDriver
from repro.drivers.mx import MxDriver
from repro.drivers.tcp import TcpDriver
from repro.network.nic import NIC
from repro.util.errors import ConfigurationError

__all__ = ["DRIVER_TYPES", "make_driver"]

#: Technology tag → driver class.
DRIVER_TYPES: dict[str, type[Driver]] = {
    "mx": MxDriver,
    "elan": ElanDriver,
    "ib": IbverbsDriver,
    "tcp": TcpDriver,
}


def make_driver(nic: NIC) -> Driver:
    """Instantiate the registered driver for a NIC's technology."""
    try:
        driver_type = DRIVER_TYPES[nic.link.name]
    except KeyError:
        raise ConfigurationError(
            f"no driver registered for technology {nic.link.name!r}"
        ) from None
    return driver_type(nic)
