"""Driver capability descriptors.

The strategy database never hardcodes technology behaviour; every
decision (can I aggregate? by copy or by gather? how large? eager or
rendezvous? PIO or DMA?) queries the :class:`DriverCapabilities` of the
candidate driver.  This is the paper's "optimizations are parameterized
by the capabilities of the underlying network drivers", and it is what
makes the same strategy code portable across MX, Elan, IB and TCP.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigurationError
from repro.util.units import KiB, us

__all__ = ["DriverCapabilities"]


@dataclass(frozen=True, slots=True)
class DriverCapabilities:
    """What one driver/NIC combination can do, and at which thresholds.

    Parameters
    ----------
    technology:
        Tag matching the :class:`~repro.network.model.LinkModel` name.
    supports_pio / supports_dma:
        Available transfer modes (at least one must be true).
    pio_threshold:
        Prefer PIO for payloads at or below this size (ignored when PIO
        is unsupported).
    supports_gather / max_gather_entries:
        Hardware scatter/gather: maximum descriptor entries per request
        (1 means contiguous only).
    max_aggregate_size:
        Largest eager packet payload the driver accepts — the hard cap on
        aggregation.
    eager_threshold:
        Payloads above this switch to the rendezvous protocol.
    supports_rdv:
        Whether the rendezvous protocol is implemented (TCP-style streams
        may do without).
    rdv_ack_delay:
        Receiver-side delay between RDV_REQ arrival and ACK emission
        (memory pinning, buffer posting).
    max_channels:
        Number of virtualized multiplexing units the NIC exposes.
    """

    technology: str
    supports_pio: bool = True
    supports_dma: bool = True
    pio_threshold: int = 4 * KiB
    supports_gather: bool = True
    max_gather_entries: int = 16
    max_aggregate_size: int = 32 * KiB
    eager_threshold: int = 32 * KiB
    supports_rdv: bool = True
    rdv_ack_delay: float = 2.0 * us
    max_channels: int = 8

    def __post_init__(self) -> None:
        if not (self.supports_pio or self.supports_dma):
            raise ConfigurationError(
                f"driver {self.technology!r} supports neither PIO nor DMA"
            )
        if self.max_gather_entries < 1:
            raise ConfigurationError(
                f"max_gather_entries must be >= 1, got {self.max_gather_entries}"
            )
        if self.supports_gather and self.max_gather_entries < 2:
            raise ConfigurationError(
                "supports_gather requires max_gather_entries >= 2"
            )
        if self.max_aggregate_size < 1:
            raise ConfigurationError(
                f"max_aggregate_size must be >= 1, got {self.max_aggregate_size}"
            )
        if self.eager_threshold < 0:
            raise ConfigurationError(
                f"eager_threshold must be >= 0, got {self.eager_threshold}"
            )
        if self.rdv_ack_delay < 0:
            raise ConfigurationError(
                f"rdv_ack_delay must be >= 0, got {self.rdv_ack_delay}"
            )
        if self.max_channels < 1:
            raise ConfigurationError(
                f"max_channels must be >= 1, got {self.max_channels}"
            )
        if self.pio_threshold < 0:
            raise ConfigurationError(
                f"pio_threshold must be >= 0, got {self.pio_threshold}"
            )

    @property
    def aggregation_limit(self) -> int:
        """Max payload slices combinable in one request.

        1 when gather is unsupported *and* copies are the only option —
        by-copy aggregation is always possible, so this reports the
        gather bound only; strategies combine it with size limits.
        """
        return self.max_gather_entries if self.supports_gather else 1
