"""Mad.Driver/IB — InfiniBand verbs driver (2005-era Mellanox HCA)."""

from __future__ import annotations

from repro.drivers.base import Driver
from repro.drivers.capabilities import DriverCapabilities
from repro.network.nic import NIC
from repro.util.units import KiB, us

__all__ = ["IbverbsDriver", "IB_CAPABILITIES"]

#: Verbs profile: tiny inline-send window standing in for PIO, strict
#: registration-driven rendezvous above 16 KiB, deep gather lists.
IB_CAPABILITIES = DriverCapabilities(
    technology="ib",
    supports_pio=True,
    supports_dma=True,
    pio_threshold=256,  # verbs inline data
    supports_gather=True,
    max_gather_entries=30,
    max_aggregate_size=16 * KiB,
    eager_threshold=16 * KiB,
    supports_rdv=True,
    rdv_ack_delay=4.0 * us,  # memory registration is costly on IB
    max_channels=16,
)


class IbverbsDriver(Driver):
    """Driver for InfiniBand verbs NICs."""

    def __init__(self, nic: NIC, caps: DriverCapabilities = IB_CAPABILITIES) -> None:
        super().__init__(nic, caps)
