"""Mad.Driver/Elan — the Quadrics QsNet II (Elan4) driver."""

from __future__ import annotations

from repro.drivers.base import Driver
from repro.drivers.capabilities import DriverCapabilities
from repro.network.nic import NIC
from repro.util.units import KiB, us

__all__ = ["ElanDriver", "ELAN_CAPABILITIES"]

#: Elan4 profile: aggressive PIO window (STEN packets), large gather
#: budget, low-latency rendezvous thanks to the on-NIC thread processor.
ELAN_CAPABILITIES = DriverCapabilities(
    technology="elan",
    supports_pio=True,
    supports_dma=True,
    pio_threshold=2 * KiB,
    supports_gather=True,
    max_gather_entries=32,
    max_aggregate_size=64 * KiB,
    eager_threshold=64 * KiB,
    supports_rdv=True,
    rdv_ack_delay=1.5 * us,
    max_channels=16,
)


class ElanDriver(Driver):
    """Driver for Quadrics/Elan NICs."""

    def __init__(self, nic: NIC, caps: DriverCapabilities = ELAN_CAPABILITIES) -> None:
        super().__init__(nic, caps)
