"""Network drivers: technology capabilities + transfer execution.

The bottom layer of Figure 1 ("Mad.Driver/MX", "Mad.Driver/Elan").  Each
driver binds one NIC and publishes a
:class:`~repro.drivers.capabilities.DriverCapabilities` descriptor; the
optimization engine's strategies are *parameterized* by these
capabilities (paper abstract: "Optimizations are parameterized by the
capabilities of the underlying network drivers").
"""

from repro.drivers.base import AggregationChoice, Driver
from repro.drivers.capabilities import DriverCapabilities
from repro.drivers.elan import ElanDriver
from repro.drivers.ibverbs import IbverbsDriver
from repro.drivers.mx import MxDriver
from repro.drivers.registry import DRIVER_TYPES, make_driver
from repro.drivers.tcp import TcpDriver

__all__ = [
    "AggregationChoice",
    "DRIVER_TYPES",
    "Driver",
    "DriverCapabilities",
    "ElanDriver",
    "IbverbsDriver",
    "MxDriver",
    "TcpDriver",
    "make_driver",
]
