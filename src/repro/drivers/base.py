"""The driver abstraction: capability queries + transfer execution.

A :class:`Driver` binds one :class:`~repro.network.nic.NIC` and answers
the three questions the optimization engine asks:

1. *How should this payload move?* — :meth:`choose_mode` (PIO vs DMA),
   :meth:`wants_rendezvous` (eager vs rendezvous), and
   :meth:`choose_aggregation` (by-copy staging vs hardware gather);
2. *What would this request cost?* — :meth:`occupancy` /
   :meth:`one_way`, delegating to the technology's
   :class:`~repro.network.model.LinkModel`;
3. *Do it.* — :meth:`send` validates the request against the driver's
   capabilities and submits it to the NIC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.drivers.capabilities import DriverCapabilities
from repro.network.model import TransferMode
from repro.network.nic import NIC
from repro.network.wire import PacketKind, WirePacket
from repro.util.errors import CapabilityError

__all__ = ["AggregationChoice", "Driver"]


@dataclass(frozen=True, slots=True)
class AggregationChoice:
    """How a multi-segment packet is assembled for the wire.

    ``copied_bytes`` were staged into a contiguous buffer by host memcpy;
    ``gather_entries`` is the scatter/gather descriptor count.  Exactly
    one of the two mechanisms dominates a request, but mixed plans
    (copy the small segments, gather the large ones) are representable.
    """

    copied_bytes: int
    gather_entries: int


class Driver:
    """Concrete driver; technology subclasses only pick the capabilities."""

    def __init__(self, nic: NIC, caps: DriverCapabilities) -> None:
        if caps.technology != nic.link.name:
            raise CapabilityError(
                f"driver for {caps.technology!r} bound to a {nic.link.name!r} NIC"
            )
        self.nic = nic
        self.caps = caps

    @property
    def name(self) -> str:
        """Driver instance name (mirrors the NIC's)."""
        return self.nic.name

    @property
    def idle(self) -> bool:
        """Whether the underlying NIC can accept a request now."""
        return self.nic.idle

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.nic.name!r})"

    # ------------------------------------------------------------------
    # decision helpers (capability-parameterized, paper abstract)
    # ------------------------------------------------------------------
    def choose_mode(self, payload_bytes: int) -> TransferMode:
        """Pick PIO or DMA for a payload.

        PIO is used when it is (a) supported, (b) within the hardware
        PIO window (``caps.pio_threshold``), and (c) actually cheaper
        than DMA under the link's cost model (below the α/β crossover).
        """
        if not self.caps.supports_pio:
            return TransferMode.DMA
        if not self.caps.supports_dma:
            return TransferMode.PIO
        limit = min(float(self.caps.pio_threshold), self.nic.link.pio_dma_crossover())
        return TransferMode.PIO if payload_bytes <= limit else TransferMode.DMA

    def wants_rendezvous(self, payload_bytes: int) -> bool:
        """Whether this payload must use the rendezvous protocol."""
        return self.caps.supports_rdv and payload_bytes > self.caps.eager_threshold

    def choose_aggregation(self, segment_sizes: list[int]) -> AggregationChoice:
        """Pick the cheaper assembly mechanism for a multi-segment packet.

        Compares the host-copy cost of staging every segment against the
        per-entry cost of a hardware gather descriptor (when supported
        and within ``max_gather_entries``); single segments are free.
        """
        n = len(segment_sizes)
        if n == 0:
            raise CapabilityError("cannot aggregate zero segments")
        if n == 1:
            return AggregationChoice(copied_bytes=0, gather_entries=1)
        total = sum(segment_sizes)
        link = self.nic.link
        copy_cost = total / link.copy_bandwidth
        if self.caps.supports_gather and n <= self.caps.max_gather_entries:
            gather_cost = (n - 1) * link.gather_entry_cost
            if gather_cost < copy_cost:
                return AggregationChoice(copied_bytes=0, gather_entries=n)
        return AggregationChoice(copied_bytes=total, gather_entries=1)

    def max_segments_per_packet(self) -> int:
        """Upper bound on aggregated segments (by-copy has no entry limit)."""
        # By-copy staging can merge arbitrarily many segments; the real
        # bound is max_aggregate_size.  Gather adds its own entry bound
        # when it is the chosen mechanism, which choose_aggregation
        # handles; here we cap to keep header overhead sane.
        return max(self.caps.max_gather_entries, 64)

    # ------------------------------------------------------------------
    # cost queries
    # ------------------------------------------------------------------
    def occupancy(
        self, wire_bytes: int, mode: TransferMode, aggregation: AggregationChoice
    ) -> float:
        """Sender-side NIC busy time for a request of ``wire_bytes``."""
        return self.nic.link.sender_occupancy(
            wire_bytes,
            mode,
            copied_bytes=aggregation.copied_bytes,
            gather_entries=aggregation.gather_entries,
        )

    def one_way(
        self, wire_bytes: int, mode: TransferMode, aggregation: AggregationChoice
    ) -> float:
        """Delay until the packet lands on the destination node."""
        return self.nic.link.one_way_time(
            wire_bytes,
            mode,
            copied_bytes=aggregation.copied_bytes,
            gather_entries=aggregation.gather_entries,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def validate(self, packet: WirePacket, aggregation: AggregationChoice) -> None:
        """Raise :class:`CapabilityError` if the request exceeds this driver."""
        if packet.kind is PacketKind.EAGER:
            if packet.payload_bytes > self.caps.max_aggregate_size:
                raise CapabilityError(
                    f"eager packet of {packet.payload_bytes} B exceeds "
                    f"max_aggregate_size={self.caps.max_aggregate_size} on {self.name}"
                )
        if aggregation.gather_entries > self.caps.max_gather_entries:
            raise CapabilityError(
                f"{aggregation.gather_entries} gather entries exceed "
                f"max_gather_entries={self.caps.max_gather_entries} on {self.name}"
            )
        if aggregation.gather_entries > 1 and not self.caps.supports_gather:
            raise CapabilityError(f"driver {self.name} does not support gather")
        if packet.kind in (PacketKind.RDV_REQ, PacketKind.RDV_ACK) and not self.caps.supports_rdv:
            raise CapabilityError(f"driver {self.name} does not support rendezvous")

    def send(
        self,
        packet: WirePacket,
        *,
        mode: TransferMode | None = None,
        aggregation: AggregationChoice | None = None,
    ) -> tuple[float, float]:
        """Validate and submit one request to the NIC.

        Returns ``(occupancy, one_way)`` so the caller can account for
        the transfer without re-deriving costs.  ``mode`` defaults to
        :meth:`choose_mode`; ``aggregation`` defaults to
        :meth:`choose_aggregation` over the packet's segments.
        """
        if aggregation is None:
            sizes = [s.length for s in packet.segments] or [0]
            aggregation = self.choose_aggregation(sizes)
        if mode is None:
            mode = self.choose_mode(packet.payload_bytes)
        if mode is TransferMode.PIO and not self.caps.supports_pio:
            raise CapabilityError(f"driver {self.name} does not support PIO")
        if mode is TransferMode.DMA and not self.caps.supports_dma:
            raise CapabilityError(f"driver {self.name} does not support DMA")
        self.validate(packet, aggregation)
        busy = self.occupancy(packet.wire_bytes, mode, aggregation)
        arrival = self.one_way(packet.wire_bytes, mode, aggregation)
        host = self.nic.link.host_occupancy(
            packet.wire_bytes, mode, copied_bytes=aggregation.copied_bytes
        )
        self.nic.submit(packet, busy, arrival, host_time=host)
        return busy, arrival
