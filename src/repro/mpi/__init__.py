"""An MPI-flavoured interface over the optimization engine.

Madeleine was the communication layer of MPICH-Madeleine; this package
recreates that stack in miniature: rank-based communicators with
tagged, wildcard-matched point-to-point operations — implemented purely
on the public packing API, so every message goes through the
optimizer-scheduler like any other middleware traffic.

::

    world = MpiWorld(cluster)
    c0, c1 = world.comm(0), world.comm(1)

    def rank0():
        request = c0.isend(dest=1, size=4096, tag=7)
        yield request.future            # wait for delivery

    def rank1():
        request = c1.irecv(source=ANY_SOURCE, tag=7)
        status = yield request.future
        assert status.size == 4096

Semantics notes (documented deviations from MPI):

* ``isend`` requests complete at *remote delivery* (synchronous-mode
  semantics) — the simulation has no user buffers to hand back early;
* message order is non-overtaking per (source, destination) on a single
  rail; multirail striping may reorder completions between flows,
  exactly as hardware multirail MPI does.
"""

from repro.mpi.communicator import (
    ANY_SOURCE,
    ANY_TAG,
    Communicator,
    MpiWorld,
    Request,
    Status,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "MpiWorld",
    "Request",
    "Status",
]
