"""Rank communicators, tag matching, and the matching engine.

One :class:`MpiWorld` wraps a cluster: every ordered node pair gets a
flow up front, and every rank runs a :class:`_Matcher` that pairs
completed incoming messages with posted receives — including the
*unexpected message queue*, the piece of MPI machinery that exists
precisely because middlewares can't control arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.process import Future
from repro.util.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.madeleine.message import Message
    from repro.runtime.cluster import Cluster

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status", "Request", "Communicator", "MpiWorld"]

#: Wildcard matching any sending rank.
ANY_SOURCE = -1
#: Wildcard matching any tag.
ANY_TAG = -1


@dataclass(frozen=True, slots=True)
class Status:
    """Completion record of a receive (mirrors ``MPI_Status``)."""

    source: int
    tag: int
    size: int
    time: float


class Request:
    """Handle on an asynchronous operation.

    ``future`` resolves with a :class:`Status` (receives) or the
    delivery time (sends); ``test()`` polls, ``status`` reads the result
    after completion.
    """

    __slots__ = ("future",)

    def __init__(self) -> None:
        self.future = Future()

    def test(self) -> bool:
        """Non-blocking completion check."""
        return self.future.done

    @property
    def status(self):
        """The resolved value; raises if the operation is still pending."""
        return self.future.value


class _Posted:
    """One outstanding irecv: match specs plus the request to resolve."""

    __slots__ = ("source", "tag", "request")

    def __init__(self, source: int, tag: int, request: Request) -> None:
        self.source = source
        self.tag = tag
        self.request = request

    def matches(self, status: Status) -> bool:
        return (self.source in (ANY_SOURCE, status.source)) and (
            self.tag in (ANY_TAG, status.tag)
        )


class _Matcher:
    """Per-rank matching engine: posted receives vs unexpected messages."""

    def __init__(self) -> None:
        self.posted: list[_Posted] = []
        self.unexpected: list[Status] = []

    def on_message(self, status: Status) -> None:
        for posted in self.posted:
            if posted.matches(status):
                self.posted.remove(posted)
                posted.request.future.resolve(status)
                return
        self.unexpected.append(status)

    def post(self, source: int, tag: int, request: Request) -> None:
        probe = _Posted(source, tag, request)
        for status in self.unexpected:
            if probe.matches(status):
                self.unexpected.remove(status)
                request.future.resolve(status)
                return
        self.posted.append(probe)

    def probe(self, source: int, tag: int) -> Status | None:
        probe = _Posted(source, tag, Request())
        for status in self.unexpected:
            if probe.matches(status):
                return status
        return None


class MpiWorld:
    """All ranks of a cluster plus the pairwise flow mesh."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.ranks = list(cluster.node_names)
        self._rank_of = {name: i for i, name in enumerate(self.ranks)}
        self._matchers = [_Matcher() for _ in self.ranks]
        self._flows: dict[tuple[int, int], object] = {}
        for src_rank, src in enumerate(self.ranks):
            api = cluster.api(src)
            for dst_rank, dst in enumerate(self.ranks):
                if src == dst:
                    continue
                flow = api.open_flow(dst, name=f"mpi.{src_rank}->{dst_rank}")
                self._flows[(src_rank, dst_rank)] = flow
                cluster.api(dst).subscribe(
                    flow, self._make_sink(src_rank, dst_rank)
                )

    def _make_sink(self, src_rank: int, dst_rank: int):
        matcher = self._matchers[dst_rank]

        def sink(message: "Message", now: float) -> None:
            status = Status(
                source=src_rank,
                tag=message.context.get("tag", 0),
                size=message.context.get("mpi_size", message.total_size),
                time=now,
            )
            matcher.on_message(status)

        return sink

    @property
    def size(self) -> int:
        """Number of ranks."""
        return len(self.ranks)

    def comm(self, rank: int) -> "Communicator":
        """The communicator of one rank."""
        if not 0 <= rank < self.size:
            raise ConfigurationError(f"rank {rank} outside [0, {self.size})")
        return Communicator(self, rank)


class Communicator:
    """Point-to-point operations of one rank."""

    def __init__(self, world: MpiWorld, rank: int) -> None:
        self.world = world
        self.rank = rank
        self._api = world.cluster.api(world.ranks[rank])
        self._matcher = world._matchers[rank]

    @property
    def size(self) -> int:
        """Number of ranks in the world."""
        return self.world.size

    # ------------------------------------------------------------------
    # point to point
    # ------------------------------------------------------------------
    def isend(
        self, dest: int, size: int, tag: int = 0, header_size: int = 16
    ) -> Request:
        """Non-blocking tagged send; completes at remote delivery."""
        if dest == self.rank:
            raise ConfigurationError("self-sends are not supported")
        if not 0 <= dest < self.size:
            raise ConfigurationError(f"dest {dest} outside [0, {self.size})")
        if tag < 0:
            raise ConfigurationError(f"tag must be >= 0, got {tag}")
        flow = self.world._flows[(self.rank, dest)]
        message = self._api.send(
            flow,
            size,
            header_size=header_size,
            context={"tag": tag, "mpi_size": size},
        )
        request = Request()
        message.completion.add_callback(request.future.resolve)
        return request

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking tagged receive; resolves with a :class:`Status`."""
        if source != ANY_SOURCE and not 0 <= source < self.size:
            raise ConfigurationError(f"source {source} outside [0, {self.size})")
        request = Request()
        self._matcher.post(source, tag, request)
        return request

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Status | None:
        """Check the unexpected queue without consuming (``MPI_Iprobe``)."""
        return self._matcher.probe(source, tag)

    @property
    def pending_unexpected(self) -> int:
        """Depth of the unexpected-message queue."""
        return len(self._matcher.unexpected)

    # ------------------------------------------------------------------
    # a tiny collective, built purely on the point-to-point layer
    # ------------------------------------------------------------------
    def barrier(self, tag: int = 1_000_000) -> Future:
        """Dissemination barrier; the future resolves when this rank
        may proceed.  Built entirely from isend/irecv chaining, so it
        needs no cooperative process."""
        done = Future()
        n = self.size
        steps = []
        k = 1
        while k < n:
            steps.append(k)
            k <<= 1

        def run_step(index: int) -> None:
            if index >= len(steps):
                done.resolve(None)
                return
            step = steps[index]
            self.isend((self.rank + step) % n, size=1, tag=tag + index, header_size=0)
            request = self.irecv(source=(self.rank - step) % n, tag=tag + index)
            request.future.add_callback(lambda _status: run_step(index + 1))

        run_step(0)
        return done
