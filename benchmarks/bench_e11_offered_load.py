"""E11 — offered-load saturation sweep.

Regenerates the delivered-throughput/latency-vs-offered-load curves for
both engines: they track together while unloaded; legacy hits its
per-packet ceiling first, and cross-flow aggregation moves the
optimizer's ceiling — the practical payoff behind the paper's §4 claim.
"""

from repro.bench.experiments import e11_offered_load


def test_e11_offered_load(experiment):
    result = experiment(e11_offered_load)
    last = result.rows[-1]
    assert last["opt_MBps"] > last["legacy_MBps"]
