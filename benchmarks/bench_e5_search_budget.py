"""E5 — future work (paper §4): bounding the number of data
rearrangements the optimizer evaluates.

Regenerates the gain-vs-budget series: communication metrics saturate
after a handful of candidate evaluations while optimizer wall time keeps
growing, so the bound is free.
"""

from repro.bench import e5_search_budget


def test_e5_search_budget(experiment):
    result = experiment(e5_search_budget)
    tputs = result.column("MBps")
    assert min(tputs) > 0.9 * max(tputs), "budget must not change results much"
