"""Macro benchmark: the full mixed-middleware scenario end to end.

Not a paper table — a whole-system regression target exercising every
subsystem at once (heterogeneous rails, adaptive channels, the auto
meta-strategy, all middleware kinds, collectives, rendezvous striping).
"""

from pathlib import Path

from repro.runtime.scenario import load_scenario_file, run_scenario

SCENARIO = Path(__file__).resolve().parent.parent / "examples" / "scenario_mixed.json"


def test_macro_scenario(benchmark):
    scenario = load_scenario_file(SCENARIO)

    def run():
        report, cluster, apps = run_scenario(scenario)
        assert all(app.done.done for app in apps)
        return report

    report = benchmark(run)
    assert report.messages > 500
    assert report.rdv_count > 0
    assert report.aggregation_ratio > 1.5
