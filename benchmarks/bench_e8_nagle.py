"""E8 — paper §3: artificially delaying packets for a short time to
increase the potential of interesting aggregations, in a TCP Nagle's
algorithm fashion.

Regenerates the aggregation-ratio / latency-vs-delay series under a
sparse arrival regime.
"""

from repro.bench import e8_nagle


def test_e8_nagle(experiment):
    result = experiment(e8_nagle)
    assert result.rows[-1]["agg_ratio"] > result.rows[0]["agg_ratio"]
