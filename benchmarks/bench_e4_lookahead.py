"""E4 — future work (paper §4): packet lookahead window sizes.

Regenerates the latency/throughput-vs-window series under a bursty
8-flow load; window=1 is the send-in-arrival-order ablation of the
NIC-idle-triggered design.
"""

from repro.bench import e4_lookahead


def test_e4_lookahead(experiment):
    result = experiment(e4_lookahead)
    tput = result.column("MBps")
    assert tput[-1] > tput[0], "wider windows must help under bursty load"
