"""E1 — Figure 1: the three-layer architecture, validated executably.

Regenerates the architecture figure as a table of per-NIC activity over
a heterogeneous fabric (2×Myrinet + 1×Quadrics) with mixed RDV / PIO /
put-get traffic, and asserts the collect → optimize → transfer layer
interaction sequence the figure depicts.
"""

from repro.bench import e1_architecture


def test_e1_architecture(experiment):
    result = experiment(e1_architecture)
    assert result.rows, "per-NIC table must not be empty"
