"""E2 — the headline claim (paper §4): aggregation of eager segments
collected from several independent communication flows brings huge
performance gains.

Regenerates the gain-vs-flow-count table: optimizing vs legacy engine on
N ∈ {1..32} independent small-message flows.
"""

from repro.bench import e2_aggregation


def test_e2_aggregation(experiment):
    result = experiment(e2_aggregation)
    gains = result.column("gain")
    # Paper shape: big multi-flow gains.
    assert max(gains) > 2.0
