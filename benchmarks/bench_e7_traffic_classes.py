"""E7 — paper §2: assigning different channels to large synchronous
sends, put/get transfers, and control/signalling messages, vs the
one-to-one mapping fallback.

Regenerates the control-latency-under-bulk-interference table per
channel policy, with the no-interference floor.
"""

from repro.bench import e7_traffic_classes


def test_e7_traffic_classes(experiment):
    result = experiment(e7_traffic_classes)
    rows = {row["policy"]: row for row in result.rows}
    shielded = rows["classes (pooled)"]["ctl_p99_us"]
    exposed = rows["single channel"]["ctl_p99_us"]
    assert shielded < exposed / 5, "class separation must shield control traffic"
