"""Shared helpers for the benchmark targets.

Each ``bench_eN_*.py`` regenerates one table/figure from DESIGN.md §4.
The experiment functions are deterministic simulations, so they run
once per benchmark (``pedantic``); the rendered tables are printed and
persisted to ``benchmarks/results/<id>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.bench.figures import render_result_figure
from repro.bench.harness import ExperimentResult, persist_result


def run_experiment(benchmark, experiment_fn, quick: bool = False) -> ExperimentResult:
    """Benchmark one experiment (single round) and persist its table."""
    result = benchmark.pedantic(
        experiment_fn, kwargs={"quick": quick}, rounds=1, iterations=1
    )
    path = persist_result(result)
    print()
    print(result.render())
    chart = render_result_figure(result)
    if chart is not None:
        print(chart)
    print(f"  (table saved to {path})")
    return result


@pytest.fixture
def experiment(benchmark):
    """Fixture form of :func:`run_experiment`."""

    def runner(experiment_fn, quick: bool = False) -> ExperimentResult:
        return run_experiment(benchmark, experiment_fn, quick=quick)

    return runner
