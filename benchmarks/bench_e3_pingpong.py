"""E3 — ping-pong latency/bandwidth sweep (paper §1 techniques).

Regenerates the classic latency/bandwidth curve on MX with the PIO/DMA
and eager/rendezvous crossovers, and checks the optimizer never
regresses on single-flow traffic.
"""

from repro.bench import e3_pingpong


def test_e3_pingpong(experiment):
    result = experiment(e3_pingpong)
    bandwidths = result.column("opt_BW_MBps")
    # Bandwidth must approach the MX link rate for large messages.
    assert bandwidths[-1] > 200
