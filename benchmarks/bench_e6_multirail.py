"""E6 — paper §2: dynamic load balancing on multiple NICs, including
NICs from multiple technologies.

Regenerates the aggregate-bandwidth table across rail configurations:
pooled scheduling vs static channel→NIC binding, homogeneous (N×MX) and
heterogeneous (MX+Elan) rails.
"""

from repro.bench import e6_multirail


def test_e6_multirail(experiment):
    result = experiment(e6_multirail)
    rows = {row["config"]: row for row in result.rows}
    assert rows["4 x mx pooled"]["speedup"] > 3.0
