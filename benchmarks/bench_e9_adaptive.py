"""E9 — paper §2: "the scheduler may also choose to dynamically change
the assignment of networking resources to traffic classes … as the
needs of the application evolve during the execution."

Regenerates the adaptive-reassignment table: bulk traffic joins an
initially control-only run; the adaptive policy promotes it to its own
channel at run time (migrating pending entries), recovering most of the
static class-separation benefit with half the multiplexing units.
"""

from repro.bench.experiments import e9_adaptive


def test_e9_adaptive(experiment):
    result = experiment(e9_adaptive)
    rows = {row["policy"]: row for row in result.rows}
    assert rows["adaptive"]["adaptations"] >= 1
