"""E10 — capability-parameterization ablation (DESIGN.md §5.3).

Regenerates the aggregation-mechanism table: the same strategy over MX
profiles with hardware gather, by-copy staging only, and no aggregation
at all — plus the host-CPU accounting that separates zero-copy gather
from memcpy staging (paper §1: aggregation "at the cost of additional
processing").
"""

from repro.bench.experiments import e10_copy_vs_gather


def test_e10_copy_vs_gather(experiment):
    result = experiment(e10_copy_vs_gather)
    rows = {row["capabilities"]: row for row in result.rows}
    assert rows["gather+copy (stock MX)"]["host_ms"] < rows["copy only (no gather)"]["host_ms"]
