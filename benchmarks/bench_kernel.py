"""Microbenchmarks of the substrate itself.

Not a paper table — these measure the simulator kernel and the engine
hot path so performance regressions in the substrate are visible
(guides: "no optimization without measuring").
"""

from repro.runtime import Cluster
from repro.sim import Simulator


def test_event_loop_rate(benchmark):
    """Raw event dispatch rate of the simulation kernel."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 20_000


def test_engine_message_rate(benchmark):
    """End-to-end messages per wall-second through the optimizing engine."""

    def run():
        cluster = Cluster(seed=0)
        api = cluster.api("n0")
        flows = [api.open_flow("n1") for _ in range(8)]
        for flow in flows:
            for _ in range(50):
                api.send(flow, 256)
        cluster.run_until_idle()
        return cluster.report().messages

    assert benchmark(run) == 400


def test_legacy_message_rate(benchmark):
    """Baseline engine hot path for comparison."""

    def run():
        cluster = Cluster(engine="legacy", seed=0)
        api = cluster.api("n0")
        flows = [api.open_flow("n1") for _ in range(8)]
        for flow in flows:
            for _ in range(50):
                api.send(flow, 256)
        cluster.run_until_idle()
        return cluster.report().messages

    assert benchmark(run) == 400
