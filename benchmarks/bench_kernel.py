"""Microbenchmarks of the substrate itself.

Not a paper table — these measure the simulator kernel and the engine
hot path so performance regressions in the substrate are visible
(guides: "no optimization without measuring").
"""

from repro.runtime import Cluster
from repro.sim import Simulator


def test_event_loop_rate(benchmark):
    """Raw event dispatch rate of the simulation kernel."""

    def run():
        sim = Simulator()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run()
        return count

    assert benchmark(run) == 20_000


def test_engine_message_rate(benchmark):
    """End-to-end messages per wall-second through the optimizing engine."""

    def run():
        cluster = Cluster(seed=0)
        api = cluster.api("n0")
        flows = [api.open_flow("n1") for _ in range(8)]
        for flow in flows:
            for _ in range(50):
                api.send(flow, 256)
        cluster.run_until_idle()
        return cluster.report().messages

    assert benchmark(run) == 400


def test_legacy_message_rate(benchmark):
    """Baseline engine hot path for comparison."""

    def run():
        cluster = Cluster(engine="legacy", seed=0)
        api = cluster.api("n0")
        flows = [api.open_flow("n1") for _ in range(8)]
        for flow in flows:
            for _ in range(50):
                api.send(flow, 256)
        cluster.run_until_idle()
        return cluster.report().messages

    assert benchmark(run) == 400


# ----------------------------------------------------------------------
# Backlog-depth sweeps of the optimizer hot path (see repro.bench.kernel
# for the CLI suite and the CI regression gate around the same probes).
# ----------------------------------------------------------------------

import pytest

from repro.bench import kernel


@pytest.mark.parametrize("depth", [16, 256])
def test_aggregate_decision_vs_backlog(benchmark, depth):
    """One greedy scheduling decision at a fixed backlog depth."""
    cluster = kernel.build_loaded_cluster(depth)
    engine = cluster.engine("n0")
    driver = engine.drivers[0]
    queues = list(engine.waiting.non_empty())

    def decide():
        plan = engine.strategy.make_plan(engine, driver)
        for queue in queues:
            queue.invalidate_caches()
        return plan

    assert benchmark(decide) is not None


@pytest.mark.parametrize("depth", [16, 256])
def test_search_decision_vs_backlog(benchmark, depth):
    """One bounded-search decision (budget 64) at a fixed backlog depth."""
    from repro.core.config import EngineConfig
    from repro.core.strategies.search import BoundedSearchStrategy

    cluster = kernel.build_loaded_cluster(
        depth,
        strategy=lambda: BoundedSearchStrategy(budget=64),
        config=EngineConfig(lookahead_window=32),
    )
    engine = cluster.engine("n0")
    driver = engine.drivers[0]
    queues = list(engine.waiting.non_empty())

    def decide():
        plan = engine.strategy.make_plan(engine, driver)
        for queue in queues:
            queue.invalidate_caches()
        return plan

    assert benchmark(decide) is not None


@pytest.mark.parametrize("depth", [64, 1024])
def test_queue_churn_vs_backlog(benchmark, depth):
    """Middle-of-queue remove/append churn (the rendezvous pattern)."""
    from repro.core.waiting import ChannelQueue
    from repro.madeleine.message import Flow

    flow = Flow("bench", "n0", "n1")
    queue = ChannelQueue(0)
    entries = [kernel._data_entry(flow) for _ in range(depth)]
    for entry in entries:
        queue.append(entry)
    middle = entries[depth // 2]

    def churn():
        queue.remove(middle)
        queue.append(middle)

    benchmark(churn)
    assert len(queue) == depth
